(* Tests for the simulation substrate: time, heap, rng, stats, engine,
   condition variables, semaphores, mutexes, CPU, traces. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Time ---------- *)

let test_time_conversions () =
  check_int "ms" 2_000 (Sim.Time.ms 2);
  check_int "sec" 3_000_000 (Sim.Time.sec 3);
  check_int "of_ms_float rounds" 1_500 (Sim.Time.of_ms_float 1.5);
  check_int "of_sec_float" 250_000 (Sim.Time.of_sec_float 0.25);
  Alcotest.(check (float 1e-9)) "to_ms_float" 1.5 (Sim.Time.to_ms_float 1_500);
  Alcotest.(check string) "pp us" "999us" (Sim.Time.to_string 999);
  Alcotest.(check string) "pp ms" "1.000ms" (Sim.Time.to_string 1_000);
  Alcotest.(check string) "pp s" "2.500s" (Sim.Time.to_string 2_500_000)

(* ---------- Heap ---------- *)

let test_heap_basic () =
  let h = Sim.Heap.create ~cmp:compare in
  check_bool "empty" true (Sim.Heap.is_empty h);
  List.iter (fun k -> Sim.Heap.push h k (k * 10)) [ 5; 1; 4; 2; 3 ];
  check_int "length" 5 (Sim.Heap.length h);
  (match Sim.Heap.peek h with
  | Some (1, 10) -> ()
  | _ -> Alcotest.fail "peek should be smallest");
  let order = ref [] in
  let rec drain () =
    match Sim.Heap.pop h with
    | Some (k, _) ->
        order := k :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_heap_clear () =
  let h = Sim.Heap.create ~cmp:compare in
  Sim.Heap.push h 1 ();
  Sim.Heap.clear h;
  check_bool "cleared" true (Sim.Heap.is_empty h);
  check_bool "pop empty" true (Sim.Heap.pop h = None)

let prop_heap_sorts =
  Helpers.qtest ~count:200 "heap drains in sorted order"
    QCheck.(list int)
    (fun l ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (fun k -> Sim.Heap.push h k ()) l;
      let rec drain acc =
        match Sim.Heap.pop h with
        | Some (k, ()) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare l)

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_int "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done;
  let c = Sim.Rng.create ~seed:8 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Sim.Rng.int a 1000 <> Sim.Rng.int c 1000 then diff := true
  done;
  check_bool "different seeds differ" true !diff

let test_rng_shuffle () =
  let rng = Sim.Rng.create ~seed:3 in
  let a = Array.init 50 Fun.id in
  Sim.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 Fun.id) sorted

let test_rng_exponential () =
  let rng = Sim.Rng.create ~seed:4 in
  let sum = ref 0. in
  let n = 5000 in
  for _ = 1 to n do
    let v = Sim.Rng.exponential rng ~mean:10. in
    check_bool "positive" true (v > 0.);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  check_bool
    (Printf.sprintf "mean ~10 (got %.2f)" mean)
    true
    (mean > 9. && mean < 11.)

(* ---------- Stats ---------- *)

let test_summary () =
  let s = Sim.Stats.Summary.create () in
  check_int "empty count" 0 (Sim.Stats.Summary.count s);
  Alcotest.(check (float 0.)) "empty mean" 0. (Sim.Stats.Summary.mean s);
  List.iter (Sim.Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "mean" 5. (Sim.Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809
    (Sim.Stats.Summary.stddev s);
  Alcotest.(check (float 0.)) "min" 2. (Sim.Stats.Summary.min s);
  Alcotest.(check (float 0.)) "max" 9. (Sim.Stats.Summary.max s);
  Alcotest.(check (float 0.)) "total" 40. (Sim.Stats.Summary.total s)

let test_percentile () =
  let values () = [| 15.; 20.; 35.; 40.; 50. |] in
  Alcotest.(check (float 1e-9)) "p0" 15. (Sim.Stats.percentile (values ()) 0.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Sim.Stats.percentile (values ()) 100.);
  Alcotest.(check (float 1e-9)) "p50" 35. (Sim.Stats.percentile (values ()) 50.);
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Sim.Stats.percentile [||] 50.))

let test_percentile_does_not_mutate () =
  let values = [| 50.; 15.; 40.; 20.; 35. |] in
  ignore (Sim.Stats.percentile values 90.);
  Alcotest.(check (array (float 0.)))
    "caller's array untouched"
    [| 50.; 15.; 40.; 20.; 35. |]
    values

let test_summary_empty_min_max () =
  (* empty summaries land in tables and the metrics JSON: they must
     yield 0 like mean, never the nan of a fold over no samples *)
  let s = Sim.Stats.Summary.create () in
  Alcotest.(check (float 0.)) "empty min" 0. (Sim.Stats.Summary.min s);
  Alcotest.(check (float 0.)) "empty max" 0. (Sim.Stats.Summary.max s);
  check_bool "min not nan" false (Float.is_nan (Sim.Stats.Summary.min s));
  check_bool "max not nan" false (Float.is_nan (Sim.Stats.Summary.max s));
  Sim.Stats.Summary.add s (-3.);
  Alcotest.(check (float 0.)) "min after add" (-3.) (Sim.Stats.Summary.min s);
  Alcotest.(check (float 0.)) "max after add" (-3.) (Sim.Stats.Summary.max s)

let test_hist () =
  let h = Sim.Stats.Hist.create () in
  List.iter (Sim.Stats.Hist.add h) [ 0; 1; 2; 3; 900 ];
  check_int "count" 5 (Sim.Stats.Hist.count h);
  let buckets = Sim.Stats.Hist.buckets h in
  check_bool "0..1 bucket holds two" true
    (List.exists (fun (lo, hi, n) -> lo = 0 && hi = 1 && n = 2) buckets);
  check_bool "900 lands in 513..1024" true
    (List.exists (fun (lo, hi, n) -> lo = 513 && hi = 1024 && n = 1) buckets)

(* ---------- Engine ---------- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~delay:30 (fun () -> log := 3 :: !log);
  Sim.Engine.schedule e ~delay:10 (fun () -> log := 1 :: !log);
  Sim.Engine.schedule e ~delay:20 (fun () -> log := 2 :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" 30 (Sim.Engine.now e)

let test_engine_fifo_same_time () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule e ~delay:10 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "FIFO tie-break" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_sleep () =
  let e = Sim.Engine.create () in
  let t_mid = ref 0 and t_end = ref 0 in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.sleep e 100;
      t_mid := Sim.Engine.now e;
      Sim.Engine.sleep e 50;
      t_end := Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "first sleep" 100 !t_mid;
  check_int "second sleep" 150 !t_end

let test_engine_run_for () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  Sim.Engine.schedule e ~delay:100 (fun () -> fired := true);
  Sim.Engine.run_for e 50;
  check_bool "not yet" false !fired;
  check_int "clock advanced to stop" 50 (Sim.Engine.now e);
  Sim.Engine.run_for e 50;
  check_bool "fired at 100" true !fired

let test_engine_suspend_resume () =
  let e = Sim.Engine.create () in
  let resume = ref (fun () -> ()) in
  let state = ref "init" in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.suspend e ~register:(fun r -> resume := r);
      state := "resumed");
  Sim.Engine.run e;
  Alcotest.(check string) "parked" "init" !state;
  check_int "one blocked" 1 (Sim.Engine.live_processes e);
  !resume ();
  Sim.Engine.run e;
  Alcotest.(check string) "resumed" "resumed" !state;
  check_int "none blocked" 0 (Sim.Engine.live_processes e)

let test_engine_double_resume_raises () =
  let e = Sim.Engine.create () in
  let resume = ref (fun () -> ()) in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.suspend e ~register:(fun r -> resume := r));
  Sim.Engine.run e;
  !resume ();
  Sim.Engine.run e;
  Alcotest.check_raises "second resume"
    (Invalid_argument "Engine: process resumed twice") (fun () -> !resume ())

let test_engine_check_quiescent () =
  let e = Sim.Engine.create () in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.suspend e ~register:(fun _ -> ()));
  Sim.Engine.run e;
  check_bool "raises Deadlock" true
    (try
       Sim.Engine.check_quiescent e;
       false
     with Sim.Engine.Deadlock _ -> true)

let test_engine_process_exception () =
  let e = Sim.Engine.create () in
  Sim.Engine.spawn e ~name:"boom" (fun () -> failwith "kaboom");
  check_bool "propagates as Failure" true
    (try
       Sim.Engine.run e;
       false
     with Failure msg ->
       (* the message names the process *)
       String.length msg > 0 && String.sub msg 0 12 = "process boom")

let test_engine_cancellable_timer () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  let note i () = fired := i :: !fired in
  let t1 = Sim.Engine.schedule_cancellable e ~delay:10 (note 1) in
  let t2 = Sim.Engine.schedule_cancellable e ~delay:20 (note 2) in
  Alcotest.(check bool) "live before cancel" false (Sim.Engine.cancelled t1);
  Sim.Engine.cancel t1;
  Sim.Engine.cancel t1 (* idempotent *);
  Alcotest.(check bool) "cancelled" true (Sim.Engine.cancelled t1);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "only the live timer fired" [ 2 ] !fired;
  Alcotest.(check bool) "fired reads as cancelled" true
    (Sim.Engine.cancelled t2);
  Sim.Engine.cancel t2 (* cancelling after firing is a no-op *);
  (* cancelling mid-run must release the slot without disturbing later
     events at the same instant *)
  let t3 = Sim.Engine.schedule_cancellable e ~delay:5 (note 3) in
  Sim.Engine.schedule e ~delay:5 (fun () -> Sim.Engine.cancel t3);
  Sim.Engine.schedule e ~delay:5 (note 4);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "t3 fired before its canceller" [ 4; 3; 2 ]
    !fired

(* ---------- Condition ---------- *)

let test_condition_signal_fifo () =
  let e = Sim.Engine.create () in
  let cv = Sim.Condition.create e "t" in
  let woke = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn e (fun () ->
        Sim.Condition.wait cv;
        woke := i :: !woke)
  done;
  Sim.Engine.run e;
  check_int "three waiting" 3 (Sim.Condition.waiters cv);
  Sim.Condition.signal cv;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "first in woke" [ 1 ] (List.rev !woke);
  Sim.Condition.broadcast cv;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "rest woke in order" [ 1; 2; 3 ] (List.rev !woke)

let test_condition_rewait_not_woken_by_same_broadcast () =
  let e = Sim.Engine.create () in
  let cv = Sim.Condition.create e "t" in
  let wakeups = ref 0 in
  Sim.Engine.spawn e (fun () ->
      Sim.Condition.wait cv;
      incr wakeups;
      Sim.Condition.wait cv;
      incr wakeups);
  Sim.Engine.run e;
  Sim.Condition.broadcast cv;
  Sim.Engine.run e;
  check_int "woken once" 1 !wakeups;
  Sim.Condition.broadcast cv;
  Sim.Engine.run e;
  check_int "woken twice" 2 !wakeups

(* ---------- Semaphore ---------- *)

let test_semaphore_blocking () =
  let e = Sim.Engine.create () in
  let sem = Sim.Semaphore.create e "t" 2 in
  let got = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn e (fun () ->
        Sim.Semaphore.acquire sem ();
        got := i :: !got)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "two got in" [ 1; 2 ] (List.rev !got);
  Sim.Semaphore.release sem ();
  Sim.Engine.run e;
  Alcotest.(check (list int)) "third after release" [ 1; 2; 3 ] (List.rev !got)

let test_semaphore_fifo_fairness () =
  let e = Sim.Engine.create () in
  let sem = Sim.Semaphore.create e "t" 0 in
  let got = ref [] in
  (* big waiter first, then small: small must NOT jump the queue *)
  Sim.Engine.spawn e (fun () ->
      Sim.Semaphore.acquire sem ~n:5 ();
      got := `Big :: !got);
  Sim.Engine.spawn e (fun () ->
      Sim.Semaphore.acquire sem ~n:1 ();
      got := `Small :: !got);
  Sim.Engine.run e;
  Sim.Semaphore.release sem ~n:1 ();
  Sim.Engine.run e;
  check_int "nobody in with 1 unit" 0 (List.length !got);
  Sim.Semaphore.release sem ~n:5 ();
  Sim.Engine.run e;
  check_bool "big first" true (List.rev !got = [ `Big; `Small ]);
  check_int "leftover" 0 (Sim.Semaphore.value sem)

let test_semaphore_try () =
  let e = Sim.Engine.create () in
  let sem = Sim.Semaphore.create e "t" 1 in
  check_bool "try ok" true (Sim.Semaphore.try_acquire sem ());
  check_bool "try fails at zero" false (Sim.Semaphore.try_acquire sem ());
  Sim.Semaphore.release sem ();
  check_int "back to one" 1 (Sim.Semaphore.value sem)

(* ---------- Mutex ---------- *)

let test_mutex_exclusion () =
  let e = Sim.Engine.create () in
  let m = Sim.Mutex.create e "t" in
  let trace = ref [] in
  Sim.Engine.spawn e (fun () ->
      Sim.Mutex.with_lock m (fun () ->
          trace := `A_in :: !trace;
          Sim.Engine.sleep e 100;
          trace := `A_out :: !trace));
  Sim.Engine.spawn e (fun () ->
      Sim.Mutex.with_lock m (fun () -> trace := `B_in :: !trace));
  Sim.Engine.run e;
  check_bool "no interleaving" true
    (List.rev !trace = [ `A_in; `A_out; `B_in ])

let test_mutex_exception_unlocks () =
  let e = Sim.Engine.create () in
  let m = Sim.Mutex.create e "t" in
  (try Sim.Mutex.with_lock m (fun () -> failwith "x") with Failure _ -> ());
  check_bool "released after exception" false (Sim.Mutex.locked m)

let test_mutex_unlock_unlocked_raises () =
  let e = Sim.Engine.create () in
  let m = Sim.Mutex.create e "t" in
  Alcotest.check_raises "unlock unheld"
    (Invalid_argument "Mutex.unlock: not locked") (fun () -> Sim.Mutex.unlock m)

(* ---------- Cpu ---------- *)

let test_cpu_accounting () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e in
  Sim.Engine.spawn e (fun () ->
      Sim.Cpu.charge cpu ~cat:Sim.Cpu.Sys ~label:"a" 100;
      Sim.Cpu.charge cpu ~cat:Sim.Cpu.User ~label:"b" 50);
  Sim.Engine.run e;
  check_int "sys" 100 (Sim.Cpu.sys_time cpu);
  check_int "user" 50 (Sim.Cpu.user_time cpu);
  check_int "clock = total" 150 (Sim.Engine.now e);
  let labels = Sim.Cpu.by_label cpu in
  check_bool "labels recorded" true
    (List.mem ("a", 100) labels && List.mem ("b", 50) labels);
  Sim.Cpu.reset cpu;
  check_int "reset" 0 (Sim.Cpu.sys_time cpu)

let test_cpu_contention_serializes () =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e in
  let finish = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn e (fun () ->
        Sim.Cpu.charge cpu 100;
        finish := (i, Sim.Engine.now e) :: !finish)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list (pair int int)))
    "serialized completions"
    [ (1, 100); (2, 200); (3, 300) ]
    (List.rev !finish)

(* ---------- Trace ---------- *)

let test_trace_ring () =
  let t = Sim.Trace.create ~capacity:3 () in
  Sim.Trace.emit t (fun () -> 1);
  Alcotest.(check int) "disabled drops" 0 (Sim.Trace.length t);
  Sim.Trace.enable t true;
  List.iter (fun i -> Sim.Trace.emit t (fun () -> i)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "keeps newest" [ 3; 4; 5 ] (Sim.Trace.to_list t);
  Alcotest.(check int) "dropped count" 2 (Sim.Trace.dropped t);
  Sim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.length t)

let suites =
  [
    ( "sim",
      [
        Alcotest.test_case "time conversions" `Quick test_time_conversions;
        Alcotest.test_case "heap basic" `Quick test_heap_basic;
        Alcotest.test_case "heap clear" `Quick test_heap_clear;
        prop_heap_sorts;
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
        Alcotest.test_case "rng exponential" `Quick test_rng_exponential;
        Alcotest.test_case "stats summary" `Quick test_summary;
        Alcotest.test_case "stats percentile" `Quick test_percentile;
        Alcotest.test_case "stats percentile no mutate" `Quick
          test_percentile_does_not_mutate;
        Alcotest.test_case "stats empty summary min/max" `Quick
          test_summary_empty_min_max;
        Alcotest.test_case "stats hist" `Quick test_hist;
        Alcotest.test_case "engine time order" `Quick test_engine_ordering;
        Alcotest.test_case "engine same-time FIFO" `Quick
          test_engine_fifo_same_time;
        Alcotest.test_case "engine sleep" `Quick test_engine_sleep;
        Alcotest.test_case "engine run_for" `Quick test_engine_run_for;
        Alcotest.test_case "engine suspend/resume" `Quick
          test_engine_suspend_resume;
        Alcotest.test_case "engine double resume" `Quick
          test_engine_double_resume_raises;
        Alcotest.test_case "engine deadlock detect" `Quick
          test_engine_check_quiescent;
        Alcotest.test_case "engine process exception" `Quick
          test_engine_process_exception;
        Alcotest.test_case "engine cancellable timer" `Quick
          test_engine_cancellable_timer;
        Alcotest.test_case "condition FIFO" `Quick test_condition_signal_fifo;
        Alcotest.test_case "condition broadcast once" `Quick
          test_condition_rewait_not_woken_by_same_broadcast;
        Alcotest.test_case "semaphore blocking" `Quick test_semaphore_blocking;
        Alcotest.test_case "semaphore FIFO fairness" `Quick
          test_semaphore_fifo_fairness;
        Alcotest.test_case "semaphore try" `Quick test_semaphore_try;
        Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
        Alcotest.test_case "mutex exception safety" `Quick
          test_mutex_exception_unlocks;
        Alcotest.test_case "mutex unlock unheld" `Quick
          test_mutex_unlock_unlocked_raises;
        Alcotest.test_case "cpu accounting" `Quick test_cpu_accounting;
        Alcotest.test_case "cpu contention" `Quick
          test_cpu_contention_serializes;
        Alcotest.test_case "trace ring" `Quick test_trace_ring;
      ] );
  ]
