(* The simulated network and the NFS-style file service: link modelling,
   RPC retry, the duplicate-request cache, client-side clustering (biod
   read-ahead, write gathering, the dirty cap), and the loss-tolerance
   properties the subsystem exists to demonstrate. *)

module T = Clusterfs.Topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bsize = Ufs.Layout.bsize

let topo ?(clients = 1) ?servers ?net ?seed ?topology ?transport ?nfsd ?biods
    ?ra_depth ?dirty_limit ?rpc_timeout ?ports_buffer ?name () =
  T.create ?net ?seed ?topology ?transport ?nfsd ?biods ?ra_depth ?dirty_limit
    ?rpc_timeout ?servers ?ports_buffer ~clients
    (Helpers.config ?name ())

let client_link_stats c =
  match T.client_link c with
  | Some l -> Net.stats l
  | None -> Alcotest.fail "client has no private link"

(* Server-side ground truth: the file's bytes as the UFS has them. *)
let server_contents t name =
  T.run t (fun t ->
      let fs = t.T.server.Clusterfs.Machine.fs in
      match Ufs.Fs.namei fs ("/" ^ name) with
      | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> None
      | ip ->
          let size = ip.Ufs.Types.size in
          let buf = Bytes.create size in
          let n = Ufs.Fs.read fs ip ~off:0 ~buf ~len:size in
          Ufs.Iops.iput fs ip;
          Some (Bytes.sub buf 0 n))

(* ---------- net layer ---------- *)

let test_medium_contention_and_delivery () =
  let engine = Sim.Engine.create () in
  let mk () = Sim.Cpu.create engine in
  let m =
    Net.Medium.create engine
      { Net.default_config with Net.bandwidth = 100_000 }
  in
  let s0 = Net.Medium.attach m ~cpu:(mk ()) in
  let s1 = Net.Medium.attach m ~cpu:(mk ()) in
  let s2 = Net.Medium.attach m ~cpu:(mk ()) in
  check_int "ids follow attach order" 2 (Net.Medium.station_id s2);
  (* stations 1 and 2 blast at station 0 concurrently: the wire is one
     serial resource, so somebody must sense it busy and back off *)
  let blast st lo =
    Sim.Engine.spawn engine (fun () ->
        let ep = Net.Medium.endpoint st ~peer:0 in
        for i = lo to lo + 4 do
          Net.send ep ~size:10_000 i
        done)
  in
  blast s1 100;
  blast s2 200;
  let got1 = ref [] and got2 = ref [] in
  let drain ~peer acc =
    Sim.Engine.spawn engine (fun () ->
        let ep = Net.Medium.endpoint s0 ~peer in
        for _ = 1 to 5 do
          acc := Net.recv ep :: !acc
        done)
  in
  drain ~peer:1 got1;
  drain ~peer:2 got2;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "per-source FIFO (station 1)"
    [ 100; 101; 102; 103; 104 ] (List.rev !got1);
  Alcotest.(check (list int)) "per-source FIFO (station 2)"
    [ 200; 201; 202; 203; 204 ] (List.rev !got2);
  let st = Net.Medium.stats m in
  check_int "all frames delivered" 10 st.Net.Medium.frames_delivered;
  check_int "nothing dropped on a clean wire" 0 st.Net.Medium.m_drops;
  check_bool "contention observed" true (st.Net.Medium.contentions > 0);
  check_bool "wire utilization accounted" true (Net.Medium.utilization m > 0.)

let test_medium_is_seeded () =
  (* same seed, same traffic -> identical backoff history; different
     seed -> (almost surely) a different contention pattern *)
  let run seed =
    let engine = Sim.Engine.create () in
    let m =
      Net.Medium.create ~seed engine
        { Net.default_config with Net.bandwidth = 50_000 }
    in
    let s0 = Net.Medium.attach m ~cpu:(Sim.Cpu.create engine) in
    let senders =
      Array.init 3 (fun _ -> Net.Medium.attach m ~cpu:(Sim.Cpu.create engine))
    in
    Array.iteri
      (fun k st ->
        Sim.Engine.spawn engine (fun () ->
            let ep = Net.Medium.endpoint st ~peer:0 in
            for i = 1 to 8 do
              Net.send ep ~size:5_000 ((k * 100) + i)
            done))
      senders;
    Array.iteri
      (fun k _ ->
        Sim.Engine.spawn engine (fun () ->
            let ep = Net.Medium.endpoint s0 ~peer:(k + 1) in
            for _ = 1 to 8 do
              ignore (Net.recv ep)
            done))
      senders;
    Sim.Engine.run engine;
    ((Net.Medium.stats m).Net.Medium.contentions, Sim.Engine.now engine)
  in
  check_bool "seed 3 reproducible" true (run 3 = run 3);
  check_bool "seeds diverge" true (run 3 <> run 4)

(* ---------- switched fabric ---------- *)

let test_switch_fifo_and_forwarding () =
  let engine = Sim.Engine.create () in
  let mk () = Sim.Cpu.create engine in
  let sw =
    Net.Switch.create engine
      { Net.default_config with Net.bandwidth = 100_000 }
  in
  let p0 = Net.Switch.attach sw ~cpu:(mk ()) in
  let p1 = Net.Switch.attach sw ~cpu:(mk ()) in
  let p2 = Net.Switch.attach sw ~cpu:(mk ()) in
  check_int "ids follow attach order" 2 (Net.Switch.port_id p2);
  (* ports 1 and 2 blast at port 0 concurrently: their uplinks are
     private (no CSMA), but port 0's downlink is one serial resource
     the switch queues for *)
  let blast p lo =
    Sim.Engine.spawn engine (fun () ->
        let ep = Net.Switch.endpoint p ~peer:0 in
        for i = lo to lo + 4 do
          Net.send ep ~size:10_000 i
        done)
  in
  blast p1 100;
  blast p2 200;
  let got1 = ref [] and got2 = ref [] in
  let drain ~peer acc =
    Sim.Engine.spawn engine (fun () ->
        let ep = Net.Switch.endpoint p0 ~peer in
        for _ = 1 to 5 do
          acc := Net.recv ep :: !acc
        done)
  in
  drain ~peer:1 got1;
  drain ~peer:2 got2;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "per-source FIFO (port 1)"
    [ 100; 101; 102; 103; 104 ] (List.rev !got1);
  Alcotest.(check (list int)) "per-source FIFO (port 2)"
    [ 200; 201; 202; 203; 204 ] (List.rev !got2);
  let st = Net.Switch.stats sw in
  check_int "all frames delivered" 10 st.Net.Switch.frames_delivered;
  check_int "nothing dropped within the buffer" 0 st.Net.Switch.sw_drops;
  check_bool "store-and-forward queueing observed" true
    (st.Net.Switch.occ_hwm >= 1);
  check_bool "port utilization accounted" true
    (Net.Switch.max_port_utilization sw > 0.)

let test_switch_overflow_is_tail_drop () =
  (* an output buffer of 1 frame with two blasting sources: the port
     must tail-drop, and what does get through stays per-source FIFO *)
  let engine = Sim.Engine.create () in
  let mk () = Sim.Cpu.create engine in
  let sw =
    Net.Switch.create ~buffer:1 engine
      { Net.default_config with Net.bandwidth = 20_000 }
  in
  let p0 = Net.Switch.attach sw ~cpu:(mk ()) in
  let senders = [| Net.Switch.attach sw ~cpu:(mk ()); Net.Switch.attach sw ~cpu:(mk ()) |] in
  Array.iteri
    (fun k p ->
      Sim.Engine.spawn engine (fun () ->
          let ep = Net.Switch.endpoint p ~peer:0 in
          (* different sizes desynchronize the two uplinks, so the
             tail-drop alternates instead of starving one source *)
          for i = 1 to 8 do
            Net.send ep ~size:(10_000 - (k * 3_000)) ((k * 100) + i)
          done))
    senders;
  let got = Array.map (fun _ -> ref []) senders in
  Array.iteri
    (fun k _ ->
      Sim.Engine.spawn engine (fun () ->
          let ep = Net.Switch.endpoint p0 ~peer:(k + 1) in
          (* drain forever; the engine stops when senders are done and
             no more frames are in flight — drop the blocked reader *)
          while true do
            let v = Net.recv ep in
            got.(k) := v :: !(got.(k))
          done))
    senders;
  (try Sim.Engine.run engine with Sim.Engine.Deadlock _ -> ());
  let st = Net.Switch.stats sw in
  check_bool "overflow drops happened" true (st.Net.Switch.overflows > 0);
  check_int "no seeded loss on a clean config" 0 st.Net.Switch.sw_drops;
  check_int "delivered + dropped = sent" st.Net.Switch.frames_sent
    (st.Net.Switch.frames_delivered + st.Net.Switch.overflows);
  check_int "high-water pinned at the buffer" 1 st.Net.Switch.occ_hwm;
  check_int "every delivered frame reached a reader"
    st.Net.Switch.frames_delivered
    (List.length !(got.(0)) + List.length !(got.(1)));
  (* per-source order of the survivors *)
  List.iter
    (fun k ->
      let s = List.rev !(got.(k)) in
      check_bool
        (Printf.sprintf "survivors of source %d stay in order" k)
        true
        (List.sort compare s = s && s <> []))
    [ 0; 1 ]

let test_switch_is_seeded () =
  (* same seed, same traffic -> identical loss pattern and timing;
     different seed -> (almost surely) different *)
  let run seed =
    let engine = Sim.Engine.create () in
    let sw =
      Net.Switch.create ~seed engine
        (Net.lossy { Net.default_config with Net.bandwidth = 50_000 } 0.2)
    in
    let p0 = Net.Switch.attach sw ~cpu:(Sim.Cpu.create engine) in
    let senders =
      Array.init 3 (fun _ -> Net.Switch.attach sw ~cpu:(Sim.Cpu.create engine))
    in
    Array.iteri
      (fun k p ->
        Sim.Engine.spawn engine (fun () ->
            let ep = Net.Switch.endpoint p ~peer:0 in
            for i = 1 to 8 do
              Net.send ep ~size:5_000 ((k * 100) + i)
            done))
      senders;
    Array.iteri
      (fun k _ ->
        Sim.Engine.spawn engine (fun () ->
            let ep = Net.Switch.endpoint p0 ~peer:(k + 1) in
            while true do
              ignore (Net.recv ep)
            done))
      senders;
    (try Sim.Engine.run engine with Sim.Engine.Deadlock _ -> ());
    let st = Net.Switch.stats sw in
    (st.Net.Switch.sw_drops, st.Net.Switch.frames_delivered, Sim.Engine.now engine)
  in
  let d, _, _ = run 3 in
  check_bool "losses actually drawn" true (d > 0);
  check_bool "seed 3 reproducible" true (run 3 = run 3);
  check_bool "seeds diverge" true (run 3 <> run 4)

let test_net_fifo_and_timing () =
  let engine = Sim.Engine.create () in
  let cpu_a = Sim.Cpu.create engine in
  let cpu_b = Sim.Cpu.create engine in
  let link = Net.create engine Net.default_config ~a_cpu:cpu_a ~b_cpu:cpu_b in
  let got = ref [] in
  Sim.Engine.spawn engine (fun () ->
      for i = 1 to 5 do
        Net.send (Net.a_end link) ~size:(i * 1000) i
      done);
  Sim.Engine.spawn engine (fun () ->
      for _ = 1 to 5 do
        got := Net.recv (Net.b_end link) :: !got
      done);
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "FIFO delivery" [ 1; 2; 3; 4; 5 ] (List.rev !got);
  let st = Net.stats link in
  check_int "all sent" 5 st.Net.msgs_sent;
  check_int "all delivered" 5 st.Net.msgs_delivered;
  check_int "no drops on a clean link" 0 st.Net.drops;
  check_bool "sender CPU charged" true (Sim.Cpu.sys_time cpu_a > 0)

let test_net_loss_is_seeded () =
  let run seed =
    let engine = Sim.Engine.create () in
    let cpu = Sim.Cpu.create engine in
    let link =
      Net.create ~seed engine
        (Net.lossy Net.default_config 0.3)
        ~a_cpu:cpu ~b_cpu:cpu
    in
    Sim.Engine.spawn engine (fun () ->
        for i = 1 to 100 do
          Net.send (Net.a_end link) ~size:100 i
        done);
    Sim.Engine.run engine;
    (Net.stats link).Net.drops
  in
  check_int "same seed, same drops" (run 7) (run 7);
  check_bool "drops happen at 30%" true (run 7 > 5);
  check_bool "different seed, different stream" true (run 7 <> run 8)

(* ---------- basic file service ---------- *)

let test_roundtrip () =
  let t = topo () in
  let len = 100_000 in
  let buf = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:1 i) in
  T.run_clients t (fun c ->
      let f = Nfs.Client.create c.T.mount "hello" in
      Nfs.Client.write f ~off:0 ~buf ~len;
      Nfs.Client.fsync f;
      (* read back through the cache *)
      let rbuf = Bytes.create len in
      check_int "cached read length" len
        (Nfs.Client.read f ~off:0 ~buf:rbuf ~len);
      check_bool "cached content" true (Bytes.equal buf rbuf);
      (* and cold, forcing READ RPCs *)
      Nfs.Client.invalidate f;
      let rbuf = Bytes.create len in
      check_int "cold read length" len
        (Nfs.Client.read f ~off:0 ~buf:rbuf ~len);
      check_bool "cold content" true (Bytes.equal buf rbuf);
      check_int "size view" len (Nfs.Client.size f));
  match server_contents t "hello" with
  | Some got ->
      check_int "server size" len (Bytes.length got);
      check_bool "bytes live in the server's UFS" true (Bytes.equal buf got)
  | None -> Alcotest.fail "file missing on server"

let test_lookup_readdir () =
  let t = topo () in
  T.run_clients t (fun c ->
      let m = c.T.mount in
      ignore (Nfs.Client.create m "a");
      ignore (Nfs.Client.create m "b");
      check_bool "lookup hit" true (Nfs.Client.lookup m "a" <> None);
      check_bool "lookup miss" true (Nfs.Client.lookup m "nope" = None);
      let names = Nfs.Client.readdir m in
      check_bool "readdir lists both" true
        (List.mem "a" names && List.mem "b" names))

let test_readdir_pages () =
  let t = topo () in
  T.run_clients t (fun c ->
      let m = c.T.mount in
      for i = 0 to 79 do
        ignore (Nfs.Client.create m (Printf.sprintf "pg%02d" i))
      done;
      let names = Nfs.Client.readdir m in
      let mine =
        List.filter
          (fun n -> String.length n = 4 && String.sub n 0 2 = "pg")
          names
      in
      check_int "every entry listed across pages" 80 (List.length mine);
      check_int "no entry repeated at page seams" 80
        (List.length (List.sort_uniq compare mine));
      let calls = Nfs.Rpc.op_calls c.T.rpc "readdir" in
      check_bool
        (Printf.sprintf "listing was paged (%d READDIR calls)" calls)
        true (calls >= 3))

let test_create_truncates () =
  let t = topo () in
  T.run_clients t (fun c ->
      let m = c.T.mount in
      let f = Nfs.Client.create m "trunc" in
      let buf = Bytes.make (4 * bsize) 'x' in
      Nfs.Client.write f ~off:0 ~buf ~len:(4 * bsize);
      Nfs.Client.fsync f;
      let f2 = Nfs.Client.create m "trunc" in
      check_int "creat truncated" 0 (Nfs.Client.size f2));
  match server_contents t "trunc" with
  | Some got -> check_int "empty on server too" 0 (Bytes.length got)
  | None -> Alcotest.fail "file missing on server"

(* ---------- client-side clustering ---------- *)

let stream_config ~file_mb path =
  { Workload.Iobench.default_config with Workload.Iobench.file_mb; path }

let test_readahead_clusters () =
  let t = topo () in
  let cfg = stream_config ~file_mb:2 "/seq" in
  T.run_clients t (fun c ->
      Workload.Remote_iobench.prepare c.T.mount cfg;
      let r =
        Workload.Remote_iobench.run_phase ~engine:(T.engine t) ~cpu:c.T.cpu
          c.T.mount cfg Workload.Iobench.FSR
      in
      check_int "all bytes" (2 * 1024 * 1024) r.Workload.Iobench.bytes_moved;
      let st = Nfs.Client.stats c.T.mount in
      check_bool "read-ahead issued" true (st.Nfs.Client.ra_issued > 0);
      check_bool "read-ahead consumed" true (st.Nfs.Client.ra_used > 0);
      (* 2 MB in 120 KB clusters is ~18 READs; per-block would be 256 *)
      let reads = Nfs.Rpc.op_calls c.T.rpc "read" in
      check_bool
        (Printf.sprintf "cluster-sized READs (%d RPCs)" reads)
        true (reads < 64))

let test_random_reads_fetch_single_blocks () =
  let t = topo () in
  let cfg =
    { (stream_config ~file_mb:2 "/rand") with Workload.Iobench.random_ops = 64 }
  in
  T.run_clients t (fun c ->
      Workload.Remote_iobench.prepare c.T.mount cfg;
      let base = (client_link_stats c).Net.bytes_sent in
      let _ =
        Workload.Remote_iobench.run_phase ~engine:(T.engine t) ~cpu:c.T.cpu
          c.T.mount cfg Workload.Iobench.FRR
      in
      let st = Nfs.Client.stats c.T.mount in
      (* random misses must not drag whole clusters over the wire *)
      check_int "no read-ahead on random" 0 st.Nfs.Client.ra_issued;
      let sent = (client_link_stats c).Net.bytes_sent - base in
      (* 64 single-block reads ~ 550 KB with framing; 64 clusters would
         be ~7.7 MB on the wire *)
      check_bool
        (Printf.sprintf "single-block fetches (%d bytes on wire)" sent)
        true
        (sent < 1024 * 1024))

let test_write_gathering () =
  let t = topo () in
  let cfg = stream_config ~file_mb:2 "/gather" in
  T.run_clients t (fun c ->
      let r =
        Workload.Remote_iobench.run_phase ~engine:(T.engine t) ~cpu:c.T.cpu
          c.T.mount cfg Workload.Iobench.FSW
      in
      check_int "all bytes" (2 * 1024 * 1024) r.Workload.Iobench.bytes_moved;
      let writes = Nfs.Rpc.op_calls c.T.rpc "write" in
      let st = Nfs.Client.stats c.T.mount in
      check_int "every push was a gather" writes st.Nfs.Client.write_gathers;
      (* 2 MB in 120 KB gathers is 18 WRITEs; per-block would be 256 *)
      check_bool
        (Printf.sprintf "gathered WRITEs (%d RPCs)" writes)
        true (writes < 64));
  match server_contents t "gather" with
  | Some got -> check_int "server got it all" (2 * 1024 * 1024) (Bytes.length got)
  | None -> Alcotest.fail "file missing on server"

let test_dirty_cap_blocks_writer () =
  (* dirty limit of one cluster: the writer must block on the cap and
     the data must still all arrive *)
  let t = topo ~dirty_limit:(120 * 1024) () in
  let len = 1024 * 1024 in
  T.run_clients t (fun c ->
      let f = Nfs.Client.create c.T.mount "capped" in
      let buf = Bytes.make bsize 'c' in
      for i = 0 to (len / bsize) - 1 do
        Nfs.Client.write f ~off:(i * bsize) ~buf ~len:bsize
      done;
      Nfs.Client.fsync f;
      let st = Nfs.Client.stats c.T.mount in
      check_bool "writer slept on the cap" true (st.Nfs.Client.dirty_sleeps > 0));
  match server_contents t "capped" with
  | Some got -> check_int "nothing lost under the cap" len (Bytes.length got)
  | None -> Alcotest.fail "file missing on server"

let test_unaligned_stream_dirty_accounting () =
  (* Regression: a flush of a run ending mid-block used to credit back
     only the truncated payload length against the bsize-per-page debit,
     leaking dirty_bytes on every such flush until the cap loop slept
     with nothing in flight — a deadlock on any long unaligned stream. *)
  let t = topo ~dirty_limit:(120 * 1024) () in
  let len = 4 * 1024 * 1024 in
  let chunk = 1000 in
  T.run_clients t (fun c ->
      let f = Nfs.Client.create c.T.mount "unaligned" in
      let off = ref 0 in
      while !off < len do
        let n = min chunk (len - !off) in
        let buf =
          Bytes.init n (fun i -> Helpers.pattern_byte ~seed:7 (!off + i))
        in
        Nfs.Client.write f ~off:!off ~buf ~len:n;
        off := !off + n
      done;
      Nfs.Client.fsync f);
  match server_contents t "unaligned" with
  | None -> Alcotest.fail "file missing on server"
  | Some got ->
      check_int "size" len (Bytes.length got);
      let ok = ref true in
      Bytes.iteri
        (fun i b -> if b <> Helpers.pattern_byte ~seed:7 i then ok := false)
        got;
      check_bool "contents match" true !ok

let test_partial_block_rmw () =
  let t = topo () in
  let len = 3 * bsize in
  T.run_clients t (fun c ->
      let f = Nfs.Client.create c.T.mount "rmw" in
      let base = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:3 i) in
      Nfs.Client.write f ~off:0 ~buf:base ~len;
      Nfs.Client.fsync f;
      Nfs.Client.invalidate f;
      (* overwrite 100 bytes in the middle of block 1 *)
      let patch = Bytes.make 100 'P' in
      Nfs.Client.write f ~off:(bsize + 50) ~buf:patch ~len:100;
      Nfs.Client.fsync f);
  match server_contents t "rmw" with
  | None -> Alcotest.fail "file missing on server"
  | Some got ->
      check_int "size unchanged" len (Bytes.length got);
      let ok = ref true in
      for i = 0 to len - 1 do
        let expect =
          if i >= bsize + 50 && i < bsize + 150 then 'P'
          else Helpers.pattern_byte ~seed:3 i
        in
        if Bytes.get got i <> expect then ok := false
      done;
      check_bool "patch applied, surroundings intact" true !ok

(* ---------- loss, retry, duplicate suppression ---------- *)

let test_lossy_link_completes_and_applies_once () =
  let t = topo ~net:(Net.lossy Net.default_config 0.15) ~seed:11 () in
  let len = 512 * 1024 in
  T.run_clients t (fun c ->
      let f = Nfs.Client.create c.T.mount "lossy" in
      let buf = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:5 i) in
      Nfs.Client.write f ~off:0 ~buf ~len;
      Nfs.Client.fsync f;
      Nfs.Client.invalidate f;
      let rbuf = Bytes.create len in
      check_int "read completes despite loss" len
        (Nfs.Client.read f ~off:0 ~buf:rbuf ~len);
      check_bool "content survives retransmission" true (Bytes.equal buf rbuf);
      let st = Nfs.Rpc.stats c.T.rpc in
      check_bool "loss actually forced retries" true
        (st.Nfs.Rpc.retransmits > 0);
      check_int "every CREATE applied exactly once"
        (Nfs.Rpc.op_calls c.T.rpc "create")
        (Nfs.Server.applied t.T.service "create");
      check_int "every WRITE applied exactly once"
        (Nfs.Rpc.op_calls c.T.rpc "write")
        (Nfs.Server.applied t.T.service "write"))

(* The property the subsystem exists for: for any loss rate < 1 and any
   op mix, every RPC completes, CREATE/WRITE apply once, and the
   resulting file contents equal a zero-loss run's. *)

type op =
  | Create of int
  | Write of int * int * int  (* file, block, blocks *)
  | Read of int * int
  | Stat of int

let gen_ops seed =
  let rng = Sim.Rng.create ~seed in
  let nops = 6 + Sim.Rng.int rng 10 in
  List.init nops (fun _ ->
      let file = Sim.Rng.int rng 2 in
      match Sim.Rng.int rng 5 with
      | 0 -> Create file
      | 1 | 2 -> Write (file, Sim.Rng.int rng 24, 1 + Sim.Rng.int rng 6)
      | 3 -> Read (file, Sim.Rng.int rng 24)
      | _ -> Stat file)

let apply_ops mount ops =
  let files = Array.make 2 None in
  let get i =
    match files.(i) with
    | Some f -> f
    | None ->
        let f = Nfs.Client.create mount (Printf.sprintf "f%d" i) in
        files.(i) <- Some f;
        f
  in
  List.iteri
    (fun k op ->
      match op with
      | Create i -> files.(i) <- Some (Nfs.Client.create mount (Printf.sprintf "f%d" i))
      | Write (i, blk, nblks) ->
          let len = nblks * bsize in
          let buf = Bytes.init len (fun j -> Helpers.pattern_byte ~seed:k j) in
          Nfs.Client.write (get i) ~off:(blk * bsize) ~buf ~len
      | Read (i, blk) ->
          let buf = Bytes.create bsize in
          ignore (Nfs.Client.read (get i) ~off:(blk * bsize) ~buf ~len:bsize)
      | Stat i -> ignore (Nfs.Client.getattr (get i)))
    ops;
  Array.iter (function Some f -> Nfs.Client.fsync f | None -> ()) files

let run_mix ?topology ?transport ~loss ~seed () =
  let t =
    topo ~net:(Net.lossy Net.default_config loss) ~seed ?topology ?transport ()
  in
  let ops = gen_ops seed in
  T.run_clients t (fun c -> apply_ops c.T.mount ops);
  let c = t.T.clients.(0) in
  let applied_once =
    Nfs.Server.applied t.T.service "create" = Nfs.Rpc.op_calls c.T.rpc "create"
    && Nfs.Server.applied t.T.service "write" = Nfs.Rpc.op_calls c.T.rpc "write"
  in
  let contents = List.map (fun n -> server_contents t n) [ "f0"; "f1" ] in
  (applied_once, contents)

let prop_lossy_equals_lossless =
  Helpers.qtest ~count:12 "any op mix, any loss < 1: completes, applies once"
    QCheck.(pair (int_bound 10_000) (int_bound 89))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      let ok_lossy, lossy = run_mix ~loss ~seed () in
      let ok_zero, zero = run_mix ~loss:0. ~seed () in
      ok_lossy && ok_zero && lossy = zero)

let prop_shared_medium_equals_p2p =
  Helpers.qtest ~count:8
    "shared medium, adaptive transport: any op mix matches p2p zero-loss"
    QCheck.(pair (int_bound 10_000) (int_bound 49))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      let ok_shared, shared =
        run_mix ~topology:T.Shared_medium ~transport:Nfs.Rpc.Adaptive ~loss
          ~seed ()
      in
      let ok_zero, zero = run_mix ~loss:0. ~seed () in
      ok_shared && ok_zero && shared = zero)

let prop_switched_equals_p2p =
  Helpers.qtest ~count:8
    "switched fabric, adaptive transport: any op mix matches p2p zero-loss"
    QCheck.(pair (int_bound 10_000) (int_bound 49))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100. in
      let ok_sw, sw =
        run_mix ~topology:T.Switched ~transport:Nfs.Rpc.Adaptive ~loss ~seed ()
      in
      let ok_zero, zero = run_mix ~loss:0. ~seed () in
      ok_sw && ok_zero && sw = zero)

(* ---------- multi-client ---------- *)

let test_clients_are_isolated () =
  let t = topo ~clients:3 () in
  let len = 64 * 1024 in
  T.run_clients t (fun c ->
      let name = Printf.sprintf "own%d" c.T.id in
      let f = Nfs.Client.create c.T.mount name in
      let buf = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:c.T.id i) in
      Nfs.Client.write f ~off:0 ~buf ~len;
      Nfs.Client.fsync f);
  for id = 0 to 2 do
    match server_contents t (Printf.sprintf "own%d" id) with
    | None -> Alcotest.fail "client file missing"
    | Some got ->
        check_int "size" len (Bytes.length got);
        let ok = ref true in
        for i = 0 to len - 1 do
          if Bytes.get got i <> Helpers.pattern_byte ~seed:id i then ok := false
        done;
        check_bool (Printf.sprintf "client %d's bytes" id) true !ok
  done

(* ---------- fleet: sharding, per-server congestion state ---------- *)

let test_sharding_spreads_and_agrees () =
  let t = topo ~clients:2 ~servers:3 () in
  let paths = List.init 32 (Printf.sprintf "/shard%d") in
  let owners = List.map (T.server_of_path t) paths in
  List.iter
    (fun o -> check_bool "owner in range" true (o >= 0 && o < 3))
    owners;
  (* the hash must actually spread the namespace *)
  List.iter
    (fun srv ->
      check_bool
        (Printf.sprintf "server %d owns something" srv)
        true
        (List.mem srv owners))
    [ 0; 1; 2 ];
  (* every client agrees, and shard picks the owner's mount *)
  List.iter
    (fun path ->
      let o = T.server_of_path t path in
      Array.iter
        (fun c ->
          check_bool "shard routes to the owner" true
            (T.shard t c path == (T.mount_of c ~server:o)))
        t.T.clients)
    paths;
  (* one server: everything is server 0 *)
  let t1 = topo () in
  List.iter
    (fun p -> check_int "single server owns all" 0 (T.server_of_path t1 p))
    paths

let test_fleet_write_read_across_servers () =
  let t = topo ~clients:2 ~servers:2 ~topology:T.Switched
      ~transport:Nfs.Rpc.Adaptive () in
  let len = 48 * 1024 in
  T.run_clients t (fun c ->
      (* each client writes files that hash to both servers *)
      for k = 0 to 3 do
        let path = Printf.sprintf "/f%d.%d" c.T.id k in
        let mount = T.shard t c path in
        let f = Nfs.Client.create mount (Filename.basename path) in
        let buf =
          Bytes.init len (fun i -> Helpers.pattern_byte ~seed:(c.T.id + k) i)
        in
        Nfs.Client.write f ~off:0 ~buf ~len;
        Nfs.Client.fsync f;
        Nfs.Client.invalidate f;
        let rbuf = Bytes.create len in
        check_int "read back" len (Nfs.Client.read f ~off:0 ~buf:rbuf ~len);
        check_bool "bytes survive the fabric" true (Bytes.equal buf rbuf)
      done);
  (* both servers actually served something *)
  Array.iteri
    (fun j svc ->
      check_bool
        (Printf.sprintf "server %d saw traffic" j)
        true
        ((Nfs.Server.stats svc).Nfs.Server.received > 0))
    t.T.services

let test_per_server_congestion_state () =
  let t = topo ~clients:1 ~servers:2 ~transport:Nfs.Rpc.Adaptive () in
  let c = t.T.clients.(0) in
  (* mounts to different servers: independent estimators *)
  check_bool "different servers, different cstate" false
    (Nfs.Rpc.shares_cstate c.T.mounts.(0).T.m_rpc c.T.mounts.(1).T.m_rpc);
  (* a second mount to server 0 shares the first's *)
  let extra = T.add_mount t c ~server:0 () in
  check_bool "same server, shared cstate" true
    (Nfs.Rpc.shares_cstate extra.T.m_rpc c.T.mounts.(0).T.m_rpc);
  check_bool "the extra mount is its own channel" true
    (extra.T.m_rpc != c.T.mounts.(0).T.m_rpc);
  (* traffic through both mounts feeds one window *)
  let len = 32 * 1024 in
  T.run t (fun _ ->
      let f1 = Nfs.Client.create c.T.mount "viaA" in
      let f2 = Nfs.Client.create extra.T.m_mount "viaB" in
      let buf = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:9 i) in
      Nfs.Client.write f1 ~off:0 ~buf ~len;
      Nfs.Client.write f2 ~off:0 ~buf ~len;
      Nfs.Client.fsync f1;
      Nfs.Client.fsync f2);
  check_bool "both channels made calls" true
    ((Nfs.Rpc.stats extra.T.m_rpc).Nfs.Rpc.calls > 0
    && (Nfs.Rpc.stats c.T.rpc).Nfs.Rpc.calls > 0);
  check_bool "shared window evolved off 2.0" true
    (Nfs.Rpc.cwnd c.T.rpc > 2.);
  let eps = 1e-9 in
  check_bool "both mounts read the same cwnd" true
    (Float.abs (Nfs.Rpc.cwnd extra.T.m_rpc -. Nfs.Rpc.cwnd c.T.rpc) < eps);
  check_bool "both mounts read the same srtt" true
    (Float.abs (Nfs.Rpc.srtt_us extra.T.m_rpc -. Nfs.Rpc.srtt_us c.T.rpc) < eps);
  (* both files landed on server 0's UFS *)
  check_bool "file via mount A on server" true (server_contents t "viaA" <> None);
  check_bool "file via mount B on server" true (server_contents t "viaB" <> None)

let test_switch_overflow_recovery_under_adaptive () =
  (* a 1-frame output buffer in front of the server: concurrent client
     bursts overflow it, drops look like loss, and the adaptive
     transport must retransmit its way through without corruption *)
  let t = topo ~clients:4 ~topology:T.Switched ~transport:Nfs.Rpc.Adaptive
      ~ports_buffer:1 ~rpc_timeout:(Sim.Time.ms 400) () in
  let len = 64 * 1024 in
  T.run_clients t (fun c ->
      let name = Printf.sprintf "ov%d" c.T.id in
      let f = Nfs.Client.create c.T.mount name in
      let buf = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:c.T.id i) in
      Nfs.Client.write f ~off:0 ~buf ~len;
      Nfs.Client.fsync f;
      Nfs.Client.invalidate f;
      let rbuf = Bytes.create len in
      check_int "read completes despite drops" len
        (Nfs.Client.read f ~off:0 ~buf:rbuf ~len);
      check_bool "contents survive buffer overflow" true
        (Bytes.equal buf rbuf));
  let sw = match T.switch t with Some sw -> sw | None -> Alcotest.fail "no switch" in
  let st = Net.Switch.stats sw in
  check_bool "the buffer actually overflowed" true
    (st.Net.Switch.overflows > 0);
  let retrans =
    Array.fold_left
      (fun acc c -> acc + (Nfs.Rpc.stats c.T.rpc).Nfs.Rpc.retransmits)
      0 t.T.clients
  in
  check_bool "drops forced retransmits" true (retrans > 0);
  (* exactly-once still holds across the drops *)
  let issued op =
    Array.fold_left
      (fun acc c -> acc + Nfs.Rpc.op_calls c.T.rpc op)
      0 t.T.clients
  in
  check_int "every WRITE applied exactly once" (issued "write")
    (Nfs.Server.applied t.T.service "write");
  check_int "every CREATE applied exactly once" (issued "create")
    (Nfs.Server.applied t.T.service "create")

(* ---------- determinism ---------- *)

let golden_scale_run () =
  let reg = Sim.Metrics.create () in
  let row =
    Clusterfs.Machine.with_metrics_sink reg (fun () ->
        Clusterfs.Experiments.nfs_scaling ~file_mb:1 ~clients:4 ())
  in
  let layers =
    List.sort_uniq compare
      (List.map (fun (l, _, _) -> l) (Sim.Metrics.snapshot reg))
  in
  (row, layers, Sim.Metrics.to_json reg, Sim.Metrics.to_csv reg)

let test_golden_nfsscale_determinism () =
  let row1, layers, json1, csv1 = golden_scale_run () in
  let row2, _, json2, csv2 = golden_scale_run () in
  check_bool "scale row identical" true (row1 = row2);
  Alcotest.(check string) "metrics JSON byte-identical" json1 json2;
  Alcotest.(check string) "metrics CSV byte-identical" csv1 csv2;
  check_bool "net and nfs sources present" true
    (List.mem "net" layers && List.mem "nfs" layers)

let golden_cc_run () =
  let reg = Sim.Metrics.create () in
  let row =
    Clusterfs.Machine.with_metrics_sink reg (fun () ->
        Clusterfs.Experiments.nfs_congestion_point ~file_mb:1
          ~net:(Net.lossy Clusterfs.Experiments.nfs_scale_net 0.02)
          ~clients:2 ~transport:Nfs.Rpc.Adaptive ~topology:T.Shared_medium ())
  in
  (row, Sim.Metrics.to_json reg, Sim.Metrics.to_csv reg)

let test_golden_adaptive_determinism () =
  let row1, json1, csv1 = golden_cc_run () in
  let row2, json2, csv2 = golden_cc_run () in
  check_bool "congestion row identical" true (row1 = row2);
  Alcotest.(check string) "metrics JSON byte-identical" json1 json2;
  Alcotest.(check string) "metrics CSV byte-identical" csv1 csv2;
  check_bool "seeded loss actually forced retransmits" true
    (row1.Clusterfs.Experiments.cc_retransmits > 0)

let golden_fleet_run () =
  let reg = Sim.Metrics.create () in
  let row =
    Clusterfs.Machine.with_metrics_sink reg (fun () ->
        Clusterfs.Experiments.nfs_fleet ~file_mb:1 ~servers:2 ~clients:16 ())
  in
  (row, Sim.Metrics.to_json reg, Sim.Metrics.to_csv reg)

let test_golden_fleet_determinism () =
  let row1, json1, csv1 = golden_fleet_run () in
  let row2, json2, csv2 = golden_fleet_run () in
  check_bool "fleet row identical" true (row1 = row2);
  Alcotest.(check string) "metrics JSON byte-identical" json1 json2;
  Alcotest.(check string) "metrics CSV byte-identical" csv1 csv2;
  check_bool "all sixteen streams moved data" true
    (row1.Clusterfs.Experiments.fl_aggregate_kb_per_sec > 0.);
  check_bool "a bottleneck was named" true
    (row1.Clusterfs.Experiments.fl_bottleneck <> "")

(* ---------- congestion regression ---------- *)

let cc_point transport =
  Clusterfs.Experiments.nfs_congestion_point ~file_mb:1 ~clients:16 ~transport
    ~topology:T.Point_to_point ()

let test_adaptive_beats_fixed_at_16 () =
  let fixed = cc_point Nfs.Rpc.Fixed in
  let adaptive = cc_point Nfs.Rpc.Adaptive in
  let open Clusterfs.Experiments in
  check_bool
    (Printf.sprintf "adaptive %.0f KB/s at least 2x fixed %.0f KB/s"
       adaptive.cc_goodput_kb_per_sec fixed.cc_goodput_kb_per_sec)
    true (adaptive.cc_goodput_kb_per_sec >= 2. *. fixed.cc_goodput_kb_per_sec);
  check_bool "fixed transport collapses into a retransmit storm" true
    (fixed.cc_retransmits > 100);
  check_bool
    (Printf.sprintf "adaptive steady-state retransmits ~0 (got %d)"
       adaptive.cc_steady_retransmits)
    true (adaptive.cc_steady_retransmits <= 4);
  check_int "no dup-cache evictions (adaptive)" 0 adaptive.cc_dup_evictions;
  check_int "no dup-cache evictions (fixed)" 0 fixed.cc_dup_evictions

let suites =
  [
    ( "net",
      [
        Alcotest.test_case "FIFO delivery and timing" `Quick
          test_net_fifo_and_timing;
        Alcotest.test_case "seeded loss" `Quick test_net_loss_is_seeded;
        Alcotest.test_case "shared medium: contention and per-source FIFO"
          `Quick test_medium_contention_and_delivery;
        Alcotest.test_case "shared medium backoff is seeded" `Quick
          test_medium_is_seeded;
        Alcotest.test_case "switch: forwarding and per-port FIFO" `Quick
          test_switch_fifo_and_forwarding;
        Alcotest.test_case "switch: finite buffers tail-drop" `Quick
          test_switch_overflow_is_tail_drop;
        Alcotest.test_case "switch: drops are seeded" `Quick
          test_switch_is_seeded;
      ] );
    ( "nfs",
      [
        Alcotest.test_case "write/read roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "lookup and readdir" `Quick test_lookup_readdir;
        Alcotest.test_case "readdir pages large directories" `Quick
          test_readdir_pages;
        Alcotest.test_case "create truncates" `Quick test_create_truncates;
        Alcotest.test_case "biod read-ahead clusters" `Quick
          test_readahead_clusters;
        Alcotest.test_case "random reads stay single-block" `Quick
          test_random_reads_fetch_single_blocks;
        Alcotest.test_case "write gathering" `Quick test_write_gathering;
        Alcotest.test_case "dirty cap throttles the writer" `Quick
          test_dirty_cap_blocks_writer;
        Alcotest.test_case "unaligned stream: dirty accounting stays exact"
          `Quick test_unaligned_stream_dirty_accounting;
        Alcotest.test_case "partial-block read-modify-write" `Quick
          test_partial_block_rmw;
        Alcotest.test_case "lossy link: completes, applies once" `Quick
          test_lossy_link_completes_and_applies_once;
        prop_lossy_equals_lossless;
        prop_shared_medium_equals_p2p;
        prop_switched_equals_p2p;
        Alcotest.test_case "sharding spreads and all clients agree" `Quick
          test_sharding_spreads_and_agrees;
        Alcotest.test_case "2 servers: write/read through the fabric" `Quick
          test_fleet_write_read_across_servers;
        Alcotest.test_case "congestion state is per-server, not per-mount"
          `Quick test_per_server_congestion_state;
        Alcotest.test_case "switch overflow: adaptive recovers, applies once"
          `Quick test_switch_overflow_recovery_under_adaptive;
        Alcotest.test_case "three clients, isolated files" `Quick
          test_clients_are_isolated;
        Alcotest.test_case "4-client nfsscale golden determinism" `Slow
          test_golden_nfsscale_determinism;
        Alcotest.test_case "adaptive-RTO golden determinism under loss" `Slow
          test_golden_adaptive_determinism;
        Alcotest.test_case "16x2 fleet golden determinism" `Slow
          test_golden_fleet_determinism;
        Alcotest.test_case "16 clients: adaptive beats fixed transport" `Slow
          test_adaptive_beats_fixed_at_16;
      ] );
  ]
