(* The metadata buffer cache: hit/miss behaviour, write-back policies
   (sync / ordered async / eviction), invalidation, LRU capacity. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_metabuf ?capacity f =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e in
  let dev = Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk) in
  let mb = Ufs.Metabuf.create ?capacity e cpu dev Ufs.Costs.default in
  let result = ref None in
  Sim.Engine.spawn e (fun () -> result := Some (f e dev mb));
  Sim.Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "metabuf test hung"

let frag_of_block i = i * Ufs.Layout.fpb

let test_read_caches () =
  with_metabuf (fun _e _dev mb ->
      let b1 = Ufs.Metabuf.read mb ~frag:(frag_of_block 10) in
      let s = Ufs.Metabuf.stats mb in
      check_int "one miss" 1 s.Ufs.Metabuf.read_misses;
      let b2 = Ufs.Metabuf.read mb ~frag:(frag_of_block 10) in
      check_int "second read hits" 1 (Ufs.Metabuf.stats mb).Ufs.Metabuf.read_misses;
      check_bool "same buffer" true (b1 == b2))

let test_alignment_enforced () =
  with_metabuf (fun _e _dev mb ->
      Alcotest.check_raises "unaligned"
        (Invalid_argument "Metabuf: fragment address not block-aligned")
        (fun () -> ignore (Ufs.Metabuf.read mb ~frag:3)))

let test_dirty_writeback_roundtrip () =
  with_metabuf (fun _e dev mb ->
      let frag = frag_of_block 20 in
      let b = Ufs.Metabuf.read mb ~frag in
      Bytes.fill b 0 16 'M';
      Ufs.Metabuf.mark_dirty mb ~frag;
      Ufs.Metabuf.sync mb;
      (* read through the raw store: the bytes must be on disk *)
      let raw = Bytes.create 16 in
      Disk.Store.read (Disk.Blkdev.store dev)
        ~off:(Ufs.Layout.frag_to_byte frag) ~len:16 raw 0;
      check_bool "written back" true (Bytes.for_all (fun c -> c = 'M') raw);
      check_int "one writeback" 1 (Ufs.Metabuf.stats mb).Ufs.Metabuf.writebacks;
      (* clean sync is a no-op *)
      Ufs.Metabuf.sync mb;
      check_int "no extra writeback" 1
        (Ufs.Metabuf.stats mb).Ufs.Metabuf.writebacks)

let test_mark_dirty_requires_residency () =
  with_metabuf (fun _e _dev mb ->
      Alcotest.check_raises "not resident"
        (Invalid_argument "Metabuf.mark_dirty: block not resident") (fun () ->
          Ufs.Metabuf.mark_dirty mb ~frag:(frag_of_block 5)))

let test_zero_creates_without_read () =
  with_metabuf (fun _e _dev mb ->
      let b = Ufs.Metabuf.zero mb ~frag:(frag_of_block 30) in
      check_bool "zeroed" true (Bytes.for_all (fun c -> c = '\000') b);
      check_int "no disk read" 0 (Ufs.Metabuf.stats mb).Ufs.Metabuf.read_misses;
      (* it is dirty: sync writes it out *)
      Ufs.Metabuf.sync mb;
      check_int "written" 1 (Ufs.Metabuf.stats mb).Ufs.Metabuf.writebacks)

let test_invalidate_discards () =
  with_metabuf (fun _e dev mb ->
      let frag = frag_of_block 40 in
      let b = Ufs.Metabuf.zero mb ~frag in
      Bytes.fill b 0 8 'X';
      Ufs.Metabuf.invalidate mb ~frag;
      Ufs.Metabuf.sync mb;
      let raw = Bytes.create 8 in
      Disk.Store.read (Disk.Blkdev.store dev)
        ~off:(Ufs.Layout.frag_to_byte frag) ~len:8 raw 0;
      check_bool "dropped, never written" true
        (Bytes.for_all (fun c -> c = '\000') raw))

let test_eviction_writes_dirty () =
  with_metabuf ~capacity:4 (fun _e dev mb ->
      let frag = frag_of_block 50 in
      let b = Ufs.Metabuf.zero mb ~frag in
      Bytes.fill b 0 8 'E';
      (* touch enough other blocks to evict it *)
      for i = 60 to 65 do
        ignore (Ufs.Metabuf.read mb ~frag:(frag_of_block i))
      done;
      let raw = Bytes.create 8 in
      Disk.Store.read (Disk.Blkdev.store dev)
        ~off:(Ufs.Layout.frag_to_byte frag) ~len:8 raw 0;
      check_bool "dirty victim written at eviction" true
        (Bytes.for_all (fun c -> c = 'E') raw))

let test_ordered_flush_async_and_drained () =
  with_metabuf (fun e dev mb ->
      let frag = frag_of_block 70 in
      let b = Ufs.Metabuf.zero mb ~frag in
      Bytes.fill b 0 8 'O';
      let t0 = Sim.Engine.now e in
      Ufs.Metabuf.flush_block_ordered mb ~frag;
      (* asynchronous: returns without waiting a disk service time
         (only the CPU submit cost has elapsed) *)
      check_bool "returned quickly" true (Sim.Engine.now e - t0 < Sim.Time.ms 5);
      Ufs.Metabuf.sync mb;
      let raw = Bytes.create 8 in
      Disk.Store.read (Disk.Blkdev.store dev)
        ~off:(Ufs.Layout.frag_to_byte frag) ~len:8 raw 0;
      check_bool "on disk after sync" true
        (Bytes.for_all (fun c -> c = 'O') raw))

let suites =
  [
    ( "ufs-metabuf",
      [
        Alcotest.test_case "read caches" `Quick test_read_caches;
        Alcotest.test_case "alignment" `Quick test_alignment_enforced;
        Alcotest.test_case "dirty writeback" `Quick test_dirty_writeback_roundtrip;
        Alcotest.test_case "mark_dirty residency" `Quick
          test_mark_dirty_requires_residency;
        Alcotest.test_case "zero block" `Quick test_zero_creates_without_read;
        Alcotest.test_case "invalidate" `Quick test_invalidate_discards;
        Alcotest.test_case "eviction writes dirty" `Quick
          test_eviction_writes_dirty;
        Alcotest.test_case "ordered flush" `Quick
          test_ordered_flush_async_and_drained;
      ] );
  ]
