(* The tracing subsystem: span trees are well-formed over arbitrary
   seeded remote runs (nesting, unique ids, the client RPC span
   bracketing the server subtree), tracing never perturbs simulated
   results, the slow-op sampler is deterministic, the engine's
   self-observability counters count, and the Chrome export has the
   shape viewers expect. *)

module Span = Sim.Span
module J = Sim.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let spec_of s =
  match Fio.Spec.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "spec %S did not parse: %s" s e

(* Run a remote fio workload under a fresh recorder; return the
   recorder and the job report JSON. *)
let traced_remote ?(clients = 1) ?recorder spec =
  let r = match recorder with Some r -> r | None -> Span.create_recorder () in
  let report =
    Span.with_recorder r (fun () ->
        let t = Clusterfs.Topology.create ~clients (Helpers.config ()) in
        let jobs =
          Clusterfs.Topology.run t (fun t ->
              Fio.Run.execute (Fio.Target.remote t) spec)
        in
        Fio.Report.to_json (Fio.Report.make spec ~target:"remote" jobs))
  in
  (r, report)

let all_spans r =
  let acc = ref [] in
  List.iter (Span.iter (fun s -> acc := s :: !acc)) (Span.export_roots r);
  List.rev !acc

(* ---------- well-formedness (qcheck over seeded runs) ---------- *)

let gen_run =
  QCheck.Gen.(
    let* seed = int_bound 1000 in
    let* rw = oneofl [ "read"; "write"; "randrw rwmixread=50" ] in
    let* iodepth = int_range 1 3 in
    let* clients = int_range 1 2 in
    return (seed, rw, iodepth, clients))

let arb_run =
  QCheck.make
    ~print:(fun (s, rw, d, c) ->
      Printf.sprintf "seed=%d rw=%s iodepth=%d clients=%d" s rw d c)
    gen_run

let well_formed (seed, rw, iodepth, clients) =
  let spec =
    spec_of
      (Printf.sprintf "name=q file=q rw=%s bs=4k size=48k iodepth=%d seed=%d"
         rw iodepth seed)
  in
  let r, _ = traced_remote ~clients spec in
  let roots = Span.export_roots r in
  if roots = [] then QCheck.Test.fail_report "no trees recorded";
  let seen_ids = Hashtbl.create 256 in
  List.iter
    (fun root ->
      if root.Span.parent_id <> 0 then
        QCheck.Test.fail_report "root has a parent";
      if root.Span.trace_id <> root.Span.span_id then
        QCheck.Test.fail_report "root trace_id is not its span_id";
      Span.iter
        (fun s ->
          if Hashtbl.mem seen_ids s.Span.span_id then
            QCheck.Test.fail_reportf "span id %d not unique" s.Span.span_id;
          Hashtbl.replace seen_ids s.Span.span_id ();
          if s.Span.trace_id <> root.Span.trace_id then
            QCheck.Test.fail_reportf "span %d leaked into another trace"
              s.Span.span_id;
          if s.Span.stop_us < s.Span.start_us then
            QCheck.Test.fail_reportf "span %d stops before it starts"
              s.Span.span_id;
          List.iter
            (fun k ->
              if k.Span.parent_id <> s.Span.span_id then
                QCheck.Test.fail_reportf "child of %d mis-parented"
                  s.Span.span_id;
              if k.Span.start_us < s.Span.start_us
                 || k.Span.stop_us > s.Span.stop_us
              then
                QCheck.Test.fail_reportf
                  "child %s [%d,%d] escapes parent %s [%d,%d]" k.Span.name
                  k.Span.start_us k.Span.stop_us s.Span.name s.Span.start_us
                  s.Span.stop_us)
            (Span.children s);
          (* a client-side RPC span brackets the grafted server subtree *)
          if String.length s.Span.name >= 4 && String.sub s.Span.name 0 4 = "rpc."
          then
            List.iter
              (fun k ->
                if
                  String.length k.Span.name >= 4
                  && String.sub k.Span.name 0 4 = "srv."
                  && not
                       (k.Span.start_us >= s.Span.start_us
                       && k.Span.stop_us <= s.Span.stop_us)
                then
                  QCheck.Test.fail_reportf
                    "server subtree %s not bracketed by client %s" k.Span.name
                    s.Span.name)
              (Span.children s))
        root)
    roots;
  true

let test_well_formed =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12
       ~name:"span trees over seeded remote runs are well-formed" arb_run
       well_formed)

(* every remote run must capture at least one tree whose client RPC
   span contains a server subtree reaching down to a disk.io leaf *)
let test_full_depth () =
  (* random reads over a file larger than the 4 MB server page cache:
     server writes are delayed (flushed by a daemon outside any request
     span) and sequential reads park in vm.wait_page behind the
     read-ahead fibers, so only a random-read miss blocks the request
     itself in Disk.Request.wait and puts disk.io under the srv
     subtree *)
  let spec = spec_of "name=d file=d rw=randread bs=4k size=6m seed=5" in
  let r, _ = traced_remote spec in
  let deep =
    List.exists
      (fun s ->
        s.Span.name = "disk.io"
        &&
        (* reached through a server subtree: its enclosing tree has a
           srv.* ancestor (tracks tell the story: disk.io under the
           server inherits "server/nfsd") *)
        s.Span.track = "server/nfsd")
      (all_spans r)
  in
  check_bool "a disk.io leaf on the server track exists" true deep

(* ---------- tracing does not perturb the simulation ---------- *)

let test_tracing_is_free () =
  let spec =
    spec_of "name=g file=g rw=randrw rwmixread=60 bs=4k size=64k seed=11"
  in
  let bare =
    let t = Clusterfs.Topology.create ~clients:1 (Helpers.config ()) in
    let jobs =
      Clusterfs.Topology.run t (fun t ->
          Fio.Run.execute (Fio.Target.remote t) spec)
    in
    Fio.Report.to_json (Fio.Report.make spec ~target:"remote" jobs)
  in
  let _, traced = traced_remote spec in
  check_string "report byte-identical with tracing on" bare traced

(* ---------- determinism of the recorder ---------- *)

let test_recorder_deterministic () =
  let spec =
    spec_of "name=s file=s rw=randrw rwmixread=40 bs=4k size=64k seed=23"
  in
  let run () =
    let r, _ = traced_remote spec in
    (Span.to_chrome r, Span.render_slowest r, List.length (Span.slow r))
  in
  let c1, s1, n1 = run () in
  let c2, s2, n2 = run () in
  check_string "chrome export byte-identical across runs" c1 c2;
  check_string "slowest-op rendering byte-identical" s1 s2;
  check_int "same slow set size" n1 n2;
  check_bool "sampler retained something" true (n1 > 0)

(* the sampler always retains the overall slowest sampled op *)
let test_sampler_keeps_max () =
  let spec = spec_of "name=m file=m rw=write bs=4k size=64k seed=7" in
  let r, _ = traced_remote spec in
  let sampled =
    (* biod.* roots are background daemons recorded with ~sample:false;
       everything else (including the closing fio.fsync) is sampled *)
    List.filter
      (fun s -> s.Span.name <> "biod.ra" && s.Span.name <> "biod.push")
      (Span.export_roots r)
  in
  let max_dur =
    List.fold_left (fun a s -> max a (Span.duration s)) 0 sampled
  in
  match Span.slow r with
  | [] -> Alcotest.fail "sampler empty"
  | slowest :: _ ->
      check_int "slowest retained tree is the true max" max_dur
        (Span.duration slowest)

(* ---------- disabled fast path ---------- *)

let test_disabled_is_passthrough () =
  Span.install None;
  check_bool "not enabled" false (Span.enabled ());
  let v =
    Span.root ~name:"r" ~track:"a/b" (fun () ->
        Span.span ~name:"s" (fun () ->
            Span.add_attr "k" (Span.I 1);
            Span.interval ~name:"i" ~start_us:0 ~stop_us:1 ();
            check_bool "no current span" true (Span.current () = None);
            41 + 1))
  in
  check_int "value passes through" 42 v

(* ---------- engine self-observability ---------- *)

let test_engine_counters () =
  let e = Sim.Engine.create () in
  check_int "nothing dispatched yet" 0 (Sim.Engine.events_dispatched e);
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.sleep e 5;
      let h = Sim.Engine.schedule_cancellable e ~delay:1000 (fun () -> ()) in
      Sim.Engine.cancel h;
      Sim.Engine.cancel h;
      (* idempotent *)
      Sim.Engine.sleep e 5);
  Sim.Engine.run e;
  check_bool "dispatched counted" true (Sim.Engine.events_dispatched e > 0);
  check_bool "heap depth seen" true (Sim.Engine.heap_max_depth e >= 1);
  check_int "one cancellation" 1 (Sim.Engine.cancellations e);
  check_int "one process" 1 (Sim.Engine.processes_spawned e);
  (* the two sleeps crossed the Suspend handler twice *)
  check_int "suspend effects counted" 2 (Sim.Engine.effect_suspends e);
  (* span effects cross the handler only when a recorder is live *)
  check_int "no span effects without a recorder" 0
    (Sim.Engine.effect_span_ops e);
  let r = Span.create_recorder () in
  Span.with_recorder r (fun () ->
      Sim.Engine.spawn e (fun () ->
          Span.root ~name:"x" ~track:"t/x" (fun () -> Sim.Engine.sleep e 3));
      Sim.Engine.run e);
  check_bool "span effects counted under a recorder" true
    (Sim.Engine.effect_span_ops e > 0);
  check_int "suspends keep counting" 3 (Sim.Engine.effect_suspends e);
  let reg = Sim.Metrics.create () in
  Sim.Engine.register_metrics e reg ~instance:"t";
  let geti name =
    match Sim.Metrics.get reg ~layer:"sim.engine" ~instance:"t" name with
    | Some (Sim.Metrics.Int n) -> n
    | _ -> Alcotest.failf "sim.engine metric %s missing" name
  in
  check_int "cancellations exported" 1 (geti "cancellations");
  check_int "eff_suspends exported" 3 (geti "eff_suspends");
  check_bool "eff_span_ops exported" true (geti "eff_span_ops" > 0);
  check_int "eff_fls_ops exported" (Sim.Engine.effect_fls_ops e)
    (geti "eff_fls_ops");
  check_int "eff_attrib_ops exported" (Sim.Engine.effect_attrib_ops e)
    (geti "eff_attrib_ops")

(* ---------- span metrics ---------- *)

let test_span_metrics () =
  let spec = spec_of "name=w file=w rw=read bs=4k size=32k seed=2" in
  let r, _ = traced_remote spec in
  let reg = Sim.Metrics.create () in
  Span.register_metrics r reg ~instance:"t";
  let get name =
    match Sim.Metrics.get reg ~layer:"sim.span" ~instance:"t" name with
    | Some (Sim.Metrics.Int n) -> n
    | _ -> Alcotest.failf "sim.span metric %s missing" name
  in
  check_bool "roots recorded" true (get "roots" > 0);
  check_bool "spans recorded" true (get "spans" > get "roots");
  check_int "ring kept everything" (get "roots") (get "log_len");
  check_int "no ring drops" 0 (get "log_dropped");
  check_bool "sampler saw ops" true (get "sampled" > 0);
  check_bool "slow trees retained" true (get "slow_retained" > 0)

(* ring overflow shows up as log_dropped, and the slow sampler keeps
   its trees alive past the ring *)
let test_ring_overflow_counted () =
  let r = Span.create_recorder ~log_capacity:4 ~slow_keep:2 () in
  let spec = spec_of "name=o file=o rw=read bs=4k size=64k seed=3" in
  let _, _ = traced_remote ~recorder:r spec in
  let reg = Sim.Metrics.create () in
  Span.register_metrics r reg ~instance:"t";
  let get name =
    match Sim.Metrics.get reg ~layer:"sim.span" ~instance:"t" name with
    | Some (Sim.Metrics.Int n) -> n
    | _ -> Alcotest.failf "sim.span metric %s missing" name
  in
  check_int "ring holds its capacity" 4 (get "log_len");
  check_bool "overflow counted" true (get "log_dropped" > 0);
  check_bool "export keeps slow trees the ring dropped" true
    (List.length (Span.export_roots r) >= 4)

(* ---------- Chrome export shape ---------- *)

let test_chrome_shape () =
  let spec = spec_of "name=c file=c rw=randrw rwmixread=50 bs=4k size=48k seed=13" in
  let r, _ = traced_remote spec in
  let doc =
    match J.parse (Span.to_chrome r) with
    | Ok j -> j
    | Error e -> Alcotest.failf "to_chrome is not valid JSON: %s" e
  in
  let events =
    match J.member "traceEvents" doc with
    | Some l -> J.to_list l
    | None -> Alcotest.fail "no traceEvents"
  in
  check_bool "events present" true (events <> []);
  let named_pids = Hashtbl.create 8 and named_tids = Hashtbl.create 8 in
  let xs = ref 0 in
  List.iter
    (fun ev ->
      let num name = Option.bind (J.member name ev) J.num in
      let pid = Option.get (num "pid") and tid = Option.get (num "tid") in
      match Option.bind (J.member "ph" ev) J.str with
      | Some "M" -> (
          match Option.bind (J.member "name" ev) J.str with
          | Some "process_name" -> Hashtbl.replace named_pids pid ()
          | Some "thread_name" -> Hashtbl.replace named_tids (pid, tid) ()
          | _ -> Alcotest.fail "unknown metadata event")
      | Some "X" ->
          incr xs;
          let ts = Option.get (num "ts") and dur = Option.get (num "dur") in
          check_bool "ts non-negative" true (ts >= 0.);
          check_bool "dur non-negative" true (dur >= 0.);
          check_bool "pid named" true (Hashtbl.mem named_pids pid);
          check_bool "tid named" true (Hashtbl.mem named_tids (pid, tid))
      | _ -> Alcotest.fail "unexpected phase")
    events;
  check_bool "X events present" true (!xs > 0)

let suites =
  [
    ( "span",
      [
        test_well_formed;
        Alcotest.test_case "full client-to-disk depth captured" `Quick
          test_full_depth;
        Alcotest.test_case "tracing leaves results byte-identical" `Quick
          test_tracing_is_free;
        Alcotest.test_case "recorder output deterministic across runs" `Quick
          test_recorder_deterministic;
        Alcotest.test_case "sampler retains the slowest op" `Quick
          test_sampler_keeps_max;
        Alcotest.test_case "disabled tracing is a passthrough" `Quick
          test_disabled_is_passthrough;
        Alcotest.test_case "engine counters count" `Quick test_engine_counters;
        Alcotest.test_case "sim.span metrics exported" `Quick test_span_metrics;
        Alcotest.test_case "ring overflow counted, slow trees survive" `Quick
          test_ring_overflow_counted;
        Alcotest.test_case "chrome export shape" `Quick test_chrome_shape;
      ] );
  ]
