(* The extent-based comparator: data integrity, extent bookkeeping,
   free-space reuse, and the title-claim sanity check against UFS. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_efs ?(extent_kb = 56) f =
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e in
  let pool = Vm.Pool.create e (Vm.Param.default ~memory_mb:4 ()) in
  let _d = Vm.Pageout.start pool cpu in
  let dev = Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk) in
  let efs = Efs.create e cpu pool dev ~extent_kb () in
  let result = ref None in
  Sim.Engine.spawn e (fun () -> result := Some (f e efs));
  Sim.Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "efs test hung"

let test_roundtrip () =
  with_efs (fun _e efs ->
      let f = Efs.creat efs "data" in
      let n = 200_000 in
      let w = Bytes.init n (fun i -> Helpers.pattern_byte ~seed:2 i) in
      Efs.write efs f ~off:0 ~buf:w ~len:n;
      Efs.fsync efs f;
      check_int "size" n (Efs.size f);
      Efs.reset_readahead efs f;
      let r = Bytes.create n in
      check_int "full read" n (Efs.read efs f ~off:0 ~buf:r ~len:n);
      check_bool "content" true (Bytes.equal w r);
      (* lookup finds it; short read at EOF *)
      let f2 = Efs.lookup efs "data" in
      let tail = Bytes.create 100 in
      check_int "short at EOF" 50 (Efs.read efs f2 ~off:(n - 50) ~buf:tail ~len:100))

let test_extent_shape () =
  with_efs ~extent_kb:64 (fun _e efs ->
      let f = Efs.creat efs "shaped" in
      let buf = Bytes.make 8192 'x' in
      (* 64KB extent = 8 blocks: 20 block writes = 3 extents *)
      for i = 0 to 19 do
        Efs.write efs f ~off:(i * 8192) ~buf ~len:8192
      done;
      check_int "three extents" 3 (Efs.extent_count f);
      (* a sparse write far away allocates exactly one more extent *)
      Efs.write efs f ~off:(100 * 8192) ~buf ~len:8192;
      check_int "one more for the sparse block" 4 (Efs.extent_count f);
      (* the hole between reads back as zeros *)
      Efs.fsync efs f;
      Efs.reset_readahead efs f;
      let r = Bytes.make 8192 'q' in
      ignore (Efs.read efs f ~off:(50 * 8192) ~buf:r ~len:8192);
      check_bool "hole is zeros" true (Bytes.for_all (fun c -> c = '\000') r))

let test_delete_frees_space () =
  with_efs (fun _e efs ->
      let wild = Bytes.make 8192 'y' in
      let f = Efs.creat efs "big" in
      for i = 0 to 255 do
        Efs.write efs f ~off:(i * 8192) ~buf:wild ~len:8192
      done;
      Efs.fsync efs f;
      Efs.delete efs "big";
      check_bool "name gone" true
        (try
           ignore (Efs.lookup efs "big");
           false
         with Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> true);
      (* the space is reusable: write it all again *)
      let g = Efs.creat efs "big2" in
      for i = 0 to 255 do
        Efs.write efs g ~off:(i * 8192) ~buf:wild ~len:8192
      done;
      Efs.fsync efs g)

let test_enospc () =
  with_efs ~extent_kb:1024 (fun _e efs ->
      let f = Efs.creat efs "hog" in
      let buf = Bytes.make 8192 'h' in
      check_bool "device fills eventually" true
        (try
           for i = 0 to 10_000 do
             Efs.write efs f ~off:(i * 8192) ~buf ~len:8192
           done;
           false
         with Vfs.Errno.Error (Vfs.Errno.ENOSPC, _) -> true))

let test_title_claim_parity () =
  (* clustered UFS must be within 15% of a same-sized-extent FS on
     sequential reads over the same hardware *)
  let efs_fsr =
    let e = Sim.Engine.create () in
    let cpu = Sim.Cpu.create e in
    let pool = Vm.Pool.create e (Vm.Param.default ~memory_mb:4 ()) in
    let _d = Vm.Pageout.start pool cpu in
    let dev = Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk) in
    let efs = Efs.create e cpu pool dev ~extent_kb:64 () in
    let result = ref 0. in
    Sim.Engine.spawn e (fun () ->
        let f = Efs.creat efs "b" in
        let buf = Bytes.make 8192 'b' in
        for i = 0 to 511 do
          Efs.write efs f ~off:(i * 8192) ~buf ~len:8192
        done;
        Efs.fsync efs f;
        Efs.reset_readahead efs f;
        let t0 = Sim.Engine.now e in
        for i = 0 to 511 do
          ignore (Efs.read efs f ~off:(i * 8192) ~buf ~len:8192)
        done;
        result := 4096. /. Sim.Time.to_sec_float (Sim.Engine.now e - t0));
    Sim.Engine.run e;
    !result
  in
  let ufs_fsr =
    Helpers.in_machine ~memory_mb:4 (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        let cfg =
          { Workload.Iobench.default_config with Workload.Iobench.file_mb = 4 }
        in
        ignore (Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW);
        (Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR)
          .Workload.Iobench.kb_per_sec)
  in
  check_bool
    (Printf.sprintf "extent-like: UFS %.0f within 15%% of EFS %.0f" ufs_fsr
       efs_fsr)
    true
    (ufs_fsr > 0.85 *. efs_fsr)

let suites =
  [
    ( "efs",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "extent shape" `Quick test_extent_shape;
        Alcotest.test_case "delete frees space" `Quick test_delete_frees_space;
        Alcotest.test_case "ENOSPC" `Quick test_enospc;
        Alcotest.test_case "title claim parity" `Slow test_title_claim_parity;
      ] );
  ]
