(* Tests for the path-level file system API: namespace operations,
   errors, link counts, persistence across remount. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bsize = Ufs.Layout.bsize

let expect_errno code f =
  try
    f ();
    Alcotest.failf "expected %s" (Vfs.Errno.to_string code)
  with Vfs.Errno.Error (c, _) ->
    Alcotest.(check string)
      "errno" (Vfs.Errno.to_string code) (Vfs.Errno.to_string c)

let test_creat_stat_namei () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/hello" in
      Helpers.write_pattern fs ip ~seed:1 ~off:0 ~len:5000;
      Ufs.Iops.iput fs ip;
      let st = Ufs.Fs.stat fs "/hello" in
      check_int "size" 5000 st.Ufs.Fs.st_size;
      check_bool "regular" true (st.Ufs.Fs.st_kind = Ufs.Dinode.Reg);
      check_int "nlink" 1 st.Ufs.Fs.st_nlink;
      check_int "fragments" 5 st.Ufs.Fs.st_blocks;
      let ip2 = Ufs.Fs.namei fs "/hello" in
      Helpers.check_pattern fs ip2 ~seed:1 ~off:0 ~len:5000;
      Ufs.Iops.iput fs ip2)

let test_errors () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      expect_errno Vfs.Errno.ENOENT (fun () -> ignore (Ufs.Fs.namei fs "/nope"));
      expect_errno Vfs.Errno.EINVAL (fun () -> ignore (Ufs.Fs.namei fs "relative"));
      let ip = Ufs.Fs.creat fs "/f" in
      Ufs.Iops.iput fs ip;
      expect_errno Vfs.Errno.ENOTDIR (fun () ->
          ignore (Ufs.Fs.namei fs "/f/child"));
      Ufs.Fs.mkdir fs "/d";
      expect_errno Vfs.Errno.EEXIST (fun () -> Ufs.Fs.mkdir fs "/d");
      expect_errno Vfs.Errno.EISDIR (fun () -> ignore (Ufs.Fs.creat fs "/d"));
      expect_errno Vfs.Errno.EISDIR (fun () -> Ufs.Fs.unlink fs "/d");
      expect_errno Vfs.Errno.ENOTDIR (fun () -> Ufs.Fs.rmdir fs "/f");
      Ufs.Fs.mkdir fs "/d/sub";
      expect_errno Vfs.Errno.ENOTEMPTY (fun () -> Ufs.Fs.rmdir fs "/d");
      Ufs.Fs.rmdir fs "/d/sub";
      Ufs.Fs.rmdir fs "/d";
      expect_errno Vfs.Errno.ENOENT (fun () -> ignore (Ufs.Fs.namei fs "/d")))

let test_unlink_frees_space () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let before = (Ufs.Fs.statfs fs).Ufs.Fs.f_bfree in
      let ip = Ufs.Fs.creat fs "/big" in
      let buf = Bytes.make bsize 'x' in
      for i = 0 to 19 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
      done;
      Ufs.Fs.fsync fs ip;
      Ufs.Iops.iput fs ip;
      check_bool "space consumed" true
        ((Ufs.Fs.statfs fs).Ufs.Fs.f_bfree < before);
      Ufs.Fs.unlink fs "/big";
      check_int "space restored" before (Ufs.Fs.statfs fs).Ufs.Fs.f_bfree)

let test_unlink_while_open () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/tmpfile" in
      Helpers.write_pattern fs ip ~seed:2 ~off:0 ~len:10000;
      Ufs.Fs.unlink fs "/tmpfile";
      (* Unix semantics: data stays readable through the open ref *)
      expect_errno Vfs.Errno.ENOENT (fun () ->
          ignore (Ufs.Fs.namei fs "/tmpfile"));
      Helpers.check_pattern fs ip ~seed:2 ~off:0 ~len:10000;
      let ifree_before = (Ufs.Fs.statfs fs).Ufs.Fs.f_ifree in
      Ufs.Iops.iput fs ip;
      (* last reference dropped: inode and blocks released *)
      check_int "inode released" (ifree_before + 1)
        (Ufs.Fs.statfs fs).Ufs.Fs.f_ifree)

let test_hard_links () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/orig" in
      Helpers.write_pattern fs ip ~seed:3 ~off:0 ~len:3000;
      Ufs.Iops.iput fs ip;
      Ufs.Fs.link fs "/orig" "/alias";
      check_int "nlink 2" 2 (Ufs.Fs.stat fs "/orig").Ufs.Fs.st_nlink;
      check_int "same inode" (Ufs.Fs.stat fs "/orig").Ufs.Fs.st_ino
        (Ufs.Fs.stat fs "/alias").Ufs.Fs.st_ino;
      Ufs.Fs.unlink fs "/orig";
      let ip2 = Ufs.Fs.namei fs "/alias" in
      Helpers.check_pattern fs ip2 ~seed:3 ~off:0 ~len:3000;
      check_int "nlink 1" 1 ip2.Ufs.Types.nlink;
      Ufs.Iops.iput fs ip2)

let test_rename () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Fs.mkdir fs "/a";
      Ufs.Fs.mkdir fs "/b";
      let ip = Ufs.Fs.creat fs "/a/f" in
      Helpers.write_pattern fs ip ~seed:4 ~off:0 ~len:2000;
      Ufs.Iops.iput fs ip;
      (* same-directory rename *)
      Ufs.Fs.rename fs "/a/f" "/a/g";
      expect_errno Vfs.Errno.ENOENT (fun () -> ignore (Ufs.Fs.namei fs "/a/f"));
      (* cross-directory rename *)
      Ufs.Fs.rename fs "/a/g" "/b/h";
      let ip2 = Ufs.Fs.namei fs "/b/h" in
      Helpers.check_pattern fs ip2 ~seed:4 ~off:0 ~len:2000;
      Ufs.Iops.iput fs ip2;
      (* replacing rename: target's storage is released *)
      let tgt = Ufs.Fs.creat fs "/b/victim" in
      Helpers.write_pattern fs tgt ~seed:5 ~off:0 ~len:1000;
      Ufs.Iops.iput fs tgt;
      Ufs.Fs.rename fs "/b/h" "/b/victim";
      let ip3 = Ufs.Fs.namei fs "/b/victim" in
      Helpers.check_pattern fs ip3 ~seed:4 ~off:0 ~len:2000;
      Ufs.Iops.iput fs ip3)

let test_rename_directory_across () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Fs.mkdir fs "/p1";
      Ufs.Fs.mkdir fs "/p2";
      Ufs.Fs.mkdir fs "/p1/child";
      let ip = Ufs.Fs.creat fs "/p1/child/data" in
      Ufs.Iops.iput fs ip;
      let p1_links = (Ufs.Fs.stat fs "/p1").Ufs.Fs.st_nlink in
      Ufs.Fs.rename fs "/p1/child" "/p2/child";
      check_int "moved dir reachable" 1
        (Ufs.Fs.stat fs "/p2/child/data").Ufs.Fs.st_nlink;
      check_int "old parent nlink dropped" (p1_links - 1)
        (Ufs.Fs.stat fs "/p1").Ufs.Fs.st_nlink;
      (* the moved directory's .. entry must point at the new parent *)
      let child = Ufs.Fs.namei fs "/p2/child" in
      let dotdot = Ufs.Dir.lookup fs child ".." in
      Ufs.Iops.iput fs child;
      check_int "dotdot rewritten"
        (Ufs.Fs.stat fs "/p2").Ufs.Fs.st_ino
        (Option.get dotdot))

let test_symlinks () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      (* fast symlink: short target lives in the dinode *)
      Ufs.Fs.symlink fs ~target:"/short" ~path:"/s1";
      Alcotest.(check string) "fast symlink" "/short" (Ufs.Fs.readlink fs "/s1");
      check_int "no blocks for fast symlink" 0
        (Ufs.Fs.stat fs "/s1").Ufs.Fs.st_blocks;
      (* slow symlink: long target needs a data fragment *)
      let long = String.make 120 'p' in
      Ufs.Fs.symlink fs ~target:long ~path:"/s2";
      Alcotest.(check string) "slow symlink" long (Ufs.Fs.readlink fs "/s2");
      check_bool "slow symlink has blocks" true
        ((Ufs.Fs.stat fs "/s2").Ufs.Fs.st_blocks > 0);
      expect_errno Vfs.Errno.EINVAL (fun () ->
          ignore (Ufs.Fs.readlink fs "/")))

let test_sparse_files () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/sparse" in
      let buf = Bytes.make 100 's' in
      Ufs.Fs.write fs ip ~off:(50 * bsize) ~buf ~len:100;
      check_int "size spans the hole" ((50 * bsize) + 100) ip.Ufs.Types.size;
      (* only the written block (fragment tail ineligible: size > direct
         range...) plus indirect metadata is allocated *)
      check_bool "sparse allocation" true
        (ip.Ufs.Types.blocks < 5 * Ufs.Layout.fpb);
      let r = Bytes.make 10 'x' in
      ignore (Ufs.Fs.read fs ip ~off:(10 * bsize) ~buf:r ~len:10);
      check_bool "hole reads zeros" true
        (Bytes.for_all (fun c -> c = '\000') r);
      Ufs.Iops.iput fs ip)

let test_dir_growth () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Fs.mkdir fs "/crowd";
      (* enough entries to outgrow several fragments *)
      for i = 0 to 299 do
        let ip = Ufs.Fs.creat fs (Printf.sprintf "/crowd/f%03d" i) in
        Ufs.Iops.iput fs ip
      done;
      let dp = Ufs.Fs.namei fs "/crowd" in
      check_int "all entries present (+ . and ..)" 302 (Ufs.Dir.count fs dp);
      Ufs.Iops.iput fs dp;
      (* spot-check lookups *)
      check_bool "first still there" true
        ((Ufs.Fs.stat fs "/crowd/f000").Ufs.Fs.st_nlink = 1);
      check_bool "last still there" true
        ((Ufs.Fs.stat fs "/crowd/f299").Ufs.Fs.st_nlink = 1);
      (* deleting reuses slots *)
      Ufs.Fs.unlink fs "/crowd/f100";
      let ip = Ufs.Fs.creat fs "/crowd/replacement" in
      Ufs.Iops.iput fs ip;
      check_bool "slot reused, directory did not grow" true
        ((Ufs.Fs.stat fs "/crowd").Ufs.Fs.st_size <= 302 * Ufs.Dir.entry_size))

let test_persistence_across_remount () =
  let config = Helpers.config () in
  let m = Clusterfs.Machine.create config in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Fs.mkdir fs "/keep";
      let ip = Ufs.Fs.creat fs "/keep/data" in
      Helpers.write_pattern fs ip ~seed:6 ~off:0 ~len:100_000;
      Ufs.Iops.iput fs ip;
      Ufs.Fs.symlink fs ~target:"/keep/data" ~path:"/keep/link";
      Ufs.Fs.unmount fs);
  (* a second machine on the same disk image *)
  let m2 = Clusterfs.Machine.create_no_format config (Clusterfs.Machine.snapshot_store m) in
  Clusterfs.Machine.run m2 (fun m2 ->
      let fs = m2.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.namei fs "/keep/data" in
      Helpers.check_pattern fs ip ~seed:6 ~off:0 ~len:100_000;
      Ufs.Iops.iput fs ip;
      Alcotest.(check string)
        "symlink survived" "/keep/data"
        (Ufs.Fs.readlink fs "/keep/link");
      Ufs.Fs.unmount fs)

let test_mount_rejects_unclean () =
  let m = Helpers.machine () in
  (* never unmounted: superblock still says dirty on the store? No — mkfs
     writes clean; mount sets nothing.  Simulate a crash by marking the
     superblock unclean on disk. *)
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      fs.Ufs.Types.sb.Ufs.Superblock.clean <- false;
      (* write the unclean superblock out *)
      Ufs.Fs.sync fs);
  let st = Clusterfs.Machine.snapshot_store m in
  let config = Helpers.config () in
  let e = Sim.Engine.create () in
  let cpu = Sim.Cpu.create e in
  let pool = Vm.Pool.create e (Vm.Param.default ~memory_mb:4 ()) in
  let dev = Disk.Blkdev.of_device (Disk.Device.create e config.Clusterfs.Config.disk) in
  Disk.Store.copy_into st (Disk.Blkdev.store dev);
  expect_errno Vfs.Errno.EINVAL (fun () ->
      ignore
        (Ufs.Fs.mount e cpu pool dev ~features:Ufs.Types.features_clustered ()))

let test_statfs_consistent () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let s = Ufs.Fs.statfs fs in
      check_bool "free below capacity" true
        ((s.Ufs.Fs.f_bfree * Ufs.Layout.fpb) + s.Ufs.Fs.f_ffree
        <= s.Ufs.Fs.f_frags);
      check_bool "reserve sane" true
        (s.Ufs.Fs.f_reserved = s.Ufs.Fs.f_frags / 10))

let suites =
  [
    ( "ufs-fs",
      [
        Alcotest.test_case "creat/stat/namei" `Quick test_creat_stat_namei;
        Alcotest.test_case "error paths" `Quick test_errors;
        Alcotest.test_case "unlink frees space" `Quick test_unlink_frees_space;
        Alcotest.test_case "unlink while open" `Quick test_unlink_while_open;
        Alcotest.test_case "hard links" `Quick test_hard_links;
        Alcotest.test_case "rename" `Quick test_rename;
        Alcotest.test_case "rename dir across parents" `Quick
          test_rename_directory_across;
        Alcotest.test_case "symlinks" `Quick test_symlinks;
        Alcotest.test_case "sparse files" `Quick test_sparse_files;
        Alcotest.test_case "directory growth" `Quick test_dir_growth;
        Alcotest.test_case "persistence across remount" `Quick
          test_persistence_across_remount;
        Alcotest.test_case "mount rejects unclean" `Quick
          test_mount_rejects_unclean;
        Alcotest.test_case "statfs" `Quick test_statfs_consistent;
      ] );
  ]
