(* The crash-consistency subsystem: the raw intent log (framing,
   wrap-around, torn tails), journalled metadata operations, O(log size)
   replay, the crash-point injection sweep (cut the power at every
   disk-write boundary and recover), the freed-fragment pin, and the
   server crash-across-the-wire scenarios. *)

module C = Clusterfs
module T = Clusterfs.Topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bsize = Ufs.Layout.bsize

let jcfg ?name () = C.Config.with_journal (Helpers.config ?name ())
let jmachine ?name () = C.Machine.create (jcfg ?name ())

let wal_of fs =
  match fs.Ufs.Types.wal with
  | Some w -> w
  | None -> Alcotest.fail "expected a journaled mount"

(* ---------- the raw log ---------- *)

let mk_dev () =
  let e = Sim.Engine.create () in
  (e, Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk))

let region_off = 1 lsl 20

(* run [f] as a simulation process and hand back its result *)
let in_process e f =
  let r = ref None in
  Sim.Engine.spawn e (fun () -> r := Some (f ()));
  Sim.Engine.run e;
  Option.get !r

let scan_payloads store ~len_bytes =
  let recs = ref [] in
  let report =
    Jrnl.scan_store store ~off_bytes:region_off ~len_bytes ~on_record:(fun b ->
        recs := Bytes.to_string b :: !recs)
  in
  (report, List.rev !recs)

let test_log_roundtrip () =
  let e, dev = mk_dev () in
  let len_bytes = 256 * 1024 in
  Jrnl.format (Disk.Blkdev.store dev) ~off_bytes:region_off ~len_bytes;
  in_process e (fun () ->
      let j = Jrnl.attach dev ~off_bytes:region_off ~len_bytes in
      Jrnl.append j (Bytes.of_string "alpha");
      Jrnl.append j (Bytes.of_string "bravo");
      check_bool "records pending" true (Jrnl.pending j);
      Jrnl.commit j;
      Jrnl.append j (Bytes.of_string "charlie");
      Jrnl.commit j;
      check_bool "nothing pending after commit" false (Jrnl.pending j));
  let report, recs = scan_payloads (Disk.Blkdev.store dev) ~len_bytes in
  check_int "entries" 2 report.Jrnl.entries;
  check_int "records" 3 report.Jrnl.records;
  check_bool "no torn tail" false report.Jrnl.torn;
  Alcotest.(check (list string))
    "payloads in commit order" [ "alpha"; "bravo"; "charlie" ] recs

let test_log_wrap () =
  let e, dev = mk_dev () in
  (* tiny region so a few dozen commits lap it several times *)
  let len_bytes = 64 * 1024 in
  Jrnl.format (Disk.Blkdev.store dev) ~off_bytes:region_off ~len_bytes;
  let wraps =
    in_process e (fun () ->
        let j = Jrnl.attach dev ~off_bytes:region_off ~len_bytes in
        for i = 0 to 39 do
          Jrnl.append j (Bytes.make 3000 (Char.chr (Char.code 'a' + (i mod 26))));
          Jrnl.commit j;
          Jrnl.checkpoint j
        done;
        (* three live entries left behind the durable head *)
        for i = 0 to 2 do
          Jrnl.append j (Bytes.make 100 (Char.chr (Char.code '0' + i)));
          Jrnl.commit j
        done;
        (Jrnl.stats j).Jrnl.wraps)
  in
  check_bool "the writer lapped the region" true (wraps > 0);
  let report, recs = scan_payloads (Disk.Blkdev.store dev) ~len_bytes in
  check_int "only the un-checkpointed entries are live" 3 report.Jrnl.entries;
  check_bool "no torn tail" false report.Jrnl.torn;
  Alcotest.(check (list string))
    "live payloads"
    [ String.make 100 '0'; String.make 100 '1'; String.make 100 '2' ]
    recs

let test_log_torn_tail () =
  let e, dev = mk_dev () in
  let len_bytes = 256 * 1024 in
  let store = Disk.Blkdev.store dev in
  Jrnl.format store ~off_bytes:region_off ~len_bytes;
  in_process e (fun () ->
      let j = Jrnl.attach dev ~off_bytes:region_off ~len_bytes in
      Jrnl.append j (Bytes.of_string "survivor");
      Jrnl.commit j;
      Jrnl.append j (Bytes.of_string "torn-away");
      Jrnl.commit j);
  (* flip a byte inside the second entry's payload (entries are
     sector-padded, so entry 2 starts one sector into the data area) *)
  let victim = region_off + Jrnl.header_reserved + 512 + 40 in
  let b = Bytes.create 1 in
  Disk.Store.read store ~off:victim ~len:1 b 0;
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  Disk.Store.write store ~off:victim ~len:1 b 0;
  let report, recs = scan_payloads store ~len_bytes in
  check_bool "corruption detected" true report.Jrnl.torn;
  check_int "scan stops at the torn entry" 1 report.Jrnl.entries;
  Alcotest.(check (list string)) "prefix survives" [ "survivor" ] recs

(* ---------- journalled operation ---------- *)

let test_journaled_namespace () =
  let m = jmachine ~name:"jfs" () in
  C.Machine.run m (fun m ->
      let fs = m.C.Machine.fs in
      Ufs.Fs.mkdir fs "/d";
      let ip = Ufs.Fs.creat fs "/d/a" in
      Helpers.write_pattern fs ip ~seed:1 ~off:0 ~len:30_000;
      Ufs.Iops.iput fs ip;
      Ufs.Fs.link fs "/d/a" "/d/hard";
      Ufs.Fs.symlink fs ~target:"/d/a" ~path:"/d/soft";
      Ufs.Fs.rename fs "/d/a" "/d/b";
      Ufs.Fs.mkdir fs "/gone";
      Ufs.Fs.rmdir fs "/gone";
      let ip = Ufs.Fs.creat fs "/d/dead" in
      Ufs.Iops.iput fs ip;
      Ufs.Fs.unlink fs "/d/dead";
      let ip = Ufs.Fs.namei fs "/d/b" in
      Helpers.check_pattern fs ip ~seed:1 ~off:0 ~len:30_000;
      Ufs.Iops.iput fs ip;
      Alcotest.(check string)
        "symlink target" "/d/a"
        (Ufs.Fs.readlink fs "/d/soft");
      let w = wal_of fs in
      check_bool "operations committed through the log" true
        (w.Ufs.Types.w_txns > 0);
      check_bool "log saw commits" true
        ((Jrnl.stats w.Ufs.Types.wj).Jrnl.commits > 0));
  (* unmount checkpoints the log and marks the image clean *)
  Helpers.fsck_clean m

let test_read_path_unchanged () =
  (* the journal must change nothing on the read path: a cold-cache
     sequential reread does the same I/O with and without it *)
  let run journaled =
    let cfg =
      if journaled then jcfg ~name:"jread" () else Helpers.config ~name:"jread" ()
    in
    let m = C.Machine.create cfg in
    C.Machine.run m (fun m ->
        let fs = m.C.Machine.fs in
        let ip = Ufs.Fs.creat fs "/seq" in
        Helpers.write_pattern fs ip ~seed:2 ~off:0 ~len:(64 * bsize);
        Ufs.Iops.iput fs ip;
        Ufs.Fs.unmount fs);
    let m2 = C.Machine.create_no_format cfg (C.Machine.snapshot_store m) in
    C.Machine.run m2 (fun m ->
        let fs = m.C.Machine.fs in
        let ip = Ufs.Fs.namei fs "/seq" in
        Helpers.check_pattern fs ip ~seed:2 ~off:0 ~len:(64 * bsize);
        Ufs.Iops.iput fs ip;
        let st = fs.Ufs.Types.stats in
        ( st.Ufs.Types.getpage_calls,
          st.Ufs.Types.pgin_ios,
          st.Ufs.Types.pgin_blocks,
          st.Ufs.Types.ra_ios,
          st.Ufs.Types.ra_blocks ))
  in
  check_bool "identical read-path I/O with and without the journal" true
    (run false = run true)

let test_pinned_frag_reuse () =
  (* truncate a file that fills most of the disk: truncates commit
     lazily, so the old blocks' free records sit in the open transaction
     and pin their fragments.  Rewriting the file forces the allocator
     into the pinned runs — it must commit to release them, never hand
     them out early (a crash could resurrect committed metadata pointing
     at overwritten bytes), never report ENOSPC *)
  let m = jmachine ~name:"pins" () in
  C.Machine.run m (fun m ->
      let fs = m.C.Machine.fs in
      let len = 10 * 1024 * 1024 in
      let ip = Ufs.Fs.creat fs "/big" in
      Helpers.write_pattern fs ip ~seed:11 ~off:0 ~len;
      Ufs.Iops.iput fs ip;
      Ufs.Fs.sync fs;
      let frag0 =
        match Ufs.Fs.extent_map fs "/big" with
        | (_, frag, _) :: _ -> frag
        | [] -> Alcotest.fail "no extents"
      in
      let ip = Ufs.Fs.namei fs "/big" in
      Ufs.Iops.itrunc fs ip;
      check_bool "freed fragments pinned while the free is uncommitted" true
        (Ufs.Wal.pinned fs frag0);
      Helpers.write_pattern fs ip ~seed:12 ~off:0 ~len;
      check_bool "reallocation committed the free before reuse" false
        (Ufs.Wal.pinned fs frag0);
      Helpers.check_pattern fs ip ~seed:12 ~off:0 ~len;
      Ufs.Iops.iput fs ip);
  Helpers.fsck_clean m

let test_syncer_metrics () =
  Helpers.in_machine (fun m ->
      let fs = m.C.Machine.fs in
      let s = Ufs.Syncer.start fs ~interval:(Sim.Time.sec 5) () in
      let ip = Ufs.Fs.creat fs "/f" in
      Helpers.write_pattern fs ip ~seed:1 ~off:0 ~len:100_000;
      Ufs.Iops.iput fs ip;
      Sim.Engine.sleep fs.Ufs.Types.engine (Sim.Time.sec 11);
      check_bool "two passes ran" true (Ufs.Syncer.passes s >= 2);
      (* most of the file went out at cluster boundaries during the
         write; the daemon still catches the tail and the inode *)
      check_bool "flush volume measured" true
        (Ufs.Syncer.flushed_bytes s >= bsize);
      check_bool "dirty age sampled" true
        (Sim.Stats.Summary.count (Ufs.Syncer.dirty_age_us s) >= 1);
      check_bool "dirty-age stamp disarmed after the pass" true
        (fs.Ufs.Types.stats.Ufs.Types.oldest_dirty < 0);
      Ufs.Syncer.stop s)

(* ---------- crash-point injection ---------- *)

(* A mixed metadata + data workload with three durability barriers; the
   sweep cuts the power at every write-completion boundary inside it. *)
let crash_workload fs =
  Ufs.Fs.mkdir fs "/d";
  let ip = Ufs.Fs.creat fs "/d/a" in
  Helpers.write_pattern fs ip ~seed:3 ~off:0 ~len:20_000;
  Ufs.Iops.iput fs ip;
  let ip = Ufs.Fs.creat fs "/d/b" in
  Helpers.write_pattern fs ip ~seed:4 ~off:0 ~len:9_000;
  Ufs.Iops.iput fs ip;
  Ufs.Fs.link fs "/d/b" "/d/b2";
  Ufs.Fs.sync fs;
  Ufs.Fs.rename fs "/d/a" "/d/c";
  Ufs.Fs.unlink fs "/d/b";
  Ufs.Fs.sync fs;
  let ip = Ufs.Fs.creat fs "/late" in
  Helpers.write_pattern fs ip ~seed:5 ~off:0 ~len:5_000;
  Ufs.Iops.iput fs ip;
  Ufs.Fs.sync fs

(* Run the workload on a fresh journaled machine, letting only the
   first [cutoff] write completions reach the platter (None = all). *)
let run_cut cutoff =
  let m = C.Machine.create (jcfg ~name:"sweep" ()) in
  C.Machine.run m (fun m ->
      Disk.Blkdev.set_write_cutoff m.C.Machine.dev cutoff;
      crash_workload m.C.Machine.fs);
  m

let recover_copy store =
  let e = Sim.Engine.create () in
  let dev = Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk) in
  Disk.Store.copy_into store (Disk.Blkdev.store dev);
  let report = Ufs.Recover.run_store dev in
  (dev, report)

(* log-region size in 8 KB scan blocks: the O(log size) replay bound *)
let log_region_blocks =
  let bytes = Ufs.Fs.journal_frags_default * Ufs.Layout.fsize in
  ((bytes + 8191) / 8192) + 1

let exists fs path =
  match Ufs.Fs.namei fs path with
  | ip ->
      Ufs.Iops.iput fs ip;
      true
  | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> false

(* Recover a crash image and check every crash-point invariant:
   fsck-zero-errors, O(log) replay, mountable, and prefix consistency —
   a committed operation implies every earlier operation committed. *)
let check_crash_point ~label ?(full = false) store =
  let dev, report = recover_copy store in
  check_bool
    (label ^ ": replay read only the log region")
    true
    (report.Ufs.Recover.scan.Jrnl.blocks_read <= log_region_blocks);
  let fr = Ufs.Fsck.check dev in
  Alcotest.(check (list string)) (label ^ ": fsck clean") [] fr.Ufs.Fsck.problems;
  let m =
    C.Machine.create_no_format (jcfg ~name:"sweep" ()) (Disk.Blkdev.store dev)
  in
  C.Machine.run m (fun m ->
      let fs = m.C.Machine.fs in
      if exists fs "/late" then begin
        (* commits are ordered: /late implies everything before it *)
        check_bool (label ^ ": rename before /late") true
          (exists fs "/d/c" && not (exists fs "/d/a"));
        check_bool (label ^ ": unlink before /late") false (exists fs "/d/b");
        check_bool (label ^ ": hard link survives its twin's unlink") true
          (exists fs "/d/b2")
      end;
      if full then begin
        let ip = Ufs.Fs.namei fs "/d/c" in
        Helpers.check_pattern fs ip ~seed:3 ~off:0 ~len:20_000;
        Ufs.Iops.iput fs ip;
        let ip = Ufs.Fs.namei fs "/late" in
        Helpers.check_pattern fs ip ~seed:5 ~off:0 ~len:5_000;
        Ufs.Iops.iput fs ip
      end)

let test_crash_sweep () =
  (* baseline: no cutoff; its write count defines the sweep range, and
     a second baseline pins the simulation as deterministic *)
  let m = run_cut None in
  let n = Disk.Blkdev.completed_writes m.C.Machine.dev in
  check_bool "the workload writes" true (n > 10);
  let m2 = run_cut None in
  check_int "write schedule is deterministic" n
    (Disk.Blkdev.completed_writes m2.C.Machine.dev);
  check_crash_point ~label:"no-cut" ~full:true (C.Machine.snapshot_store m);
  for k = 0 to n - 1 do
    let mk = run_cut (Some k) in
    check_crash_point
      ~label:(Printf.sprintf "cut@%d" k)
      (C.Machine.snapshot_store mk)
  done

let test_crash_point_random () =
  (* qcheck leg of the harness: random crash points over the same
     systematic invariants (redundant with the sweep for this workload,
     load-bearing the day the workload grows) *)
  let n = Disk.Blkdev.completed_writes (run_cut None).C.Machine.dev in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:25 ~name:"random crash point recovers"
       QCheck.(int_bound (n - 1))
       (fun k ->
         let mk = run_cut (Some k) in
         let dev, report = recover_copy (C.Machine.snapshot_store mk) in
         report.Ufs.Recover.scan.Jrnl.blocks_read <= log_region_blocks
         && Ufs.Fsck.ok (Ufs.Fsck.check dev)))

let test_orphan_reap () =
  (* unlink-while-open, then the plug: the inode's free never ran, so
     replay's orphan pass must reap it *)
  let m = jmachine ~name:"orphan" () in
  let store =
    C.Machine.run m (fun m ->
        let fs = m.C.Machine.fs in
        let ip = Ufs.Fs.creat fs "/doomed" in
        Helpers.write_pattern fs ip ~seed:8 ~off:0 ~len:40_000;
        Ufs.Fs.fsync fs ip;
        Ufs.Fs.sync fs;
        Ufs.Fs.unlink fs "/doomed";
        (* ip still referenced: no iput, no free — power off *)
        C.Machine.crash m)
  in
  let dev, report = recover_copy store in
  check_int "orphan reaped" 1 report.Ufs.Recover.orphans;
  check_bool "its fragments reclaimed" true (report.Ufs.Recover.orphan_frags > 0);
  let fr = Ufs.Fsck.check dev in
  Alcotest.(check (list string)) "fsck clean" [] fr.Ufs.Fsck.problems;
  let m2 =
    C.Machine.create_no_format (jcfg ~name:"orphan" ()) (Disk.Blkdev.store dev)
  in
  C.Machine.run m2 (fun m2 ->
      check_bool "name gone" false (exists m2.C.Machine.fs "/doomed"))

(* ---------- server crash across the wire ---------- *)

let test_server_crash_ride_through () =
  let t =
    T.create ~clients:1 ~rpc_timeout:(Sim.Time.ms 50) (jcfg ~name:"nfsj" ())
  in
  let blocks = 24 in
  let len = blocks * bsize in
  let report = ref None in
  T.run t (fun t ->
      let engine = T.engine t in
      let c = t.T.clients.(0) in
      let f = Nfs.Client.create c.T.mount "stream" in
      let buf = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:7 i) in
      Nfs.Client.write f ~off:0 ~buf ~len;
      Nfs.Client.fsync f;
      (* make the data durable server-side: the crash tests the journal
         and the wire, not (unlogged) lost file data *)
      Ufs.Fs.sync t.T.server.C.Machine.fs;
      Nfs.Client.invalidate f;
      let got = Bytes.create len in
      let finished = ref false in
      Sim.Engine.spawn engine ~name:"reader" (fun () ->
          let chunk = Bytes.create bsize in
          for b = 0 to blocks - 1 do
            let n = Nfs.Client.read f ~off:(b * bsize) ~buf:chunk ~len:bsize in
            Bytes.blit chunk 0 got (b * bsize) n
          done;
          finished := true);
      (* cut the power mid-stream *)
      Sim.Engine.sleep engine (Sim.Time.ms 5);
      check_bool "reader still running at the crash" false !finished;
      ignore (T.crash_server t);
      check_bool "service down" true (Nfs.Server.is_down t.T.service);
      Sim.Engine.sleep engine (Sim.Time.ms 300);
      report := Some (T.reboot_server t);
      while not !finished do
        Sim.Engine.sleep engine (Sim.Time.ms 10)
      done;
      (* the hard mount rode through: no error surfaced, and the bytes
         are exactly what was written before the crash *)
      check_bool "byte-identical across the crash" true (Bytes.equal got buf);
      check_int "one crash/reboot cycle" 1 (Nfs.Server.restarts t.T.service));
  match !report with
  | None -> Alcotest.fail "no recovery report"
  | Some r ->
      check_bool "replay read only the log region" true
        (r.Ufs.Recover.scan.Jrnl.blocks_read <= log_region_blocks)

let test_dup_cache_window () =
  (* pin NFSv2's non-idempotent replay window: with the server up, a
     retransmitted CREATE is answered from the dup cache without
     re-applying; across a crash/restart the (volatile) cache is empty
     and the same retransmit re-executes — truncating the file *)
  let m = jmachine ~name:"dupw" () in
  let e = m.C.Machine.engine in
  let client_cpu = Sim.Cpu.create e in
  let link =
    Net.create e Net.default_config ~a_cpu:client_cpu ~b_cpu:m.C.Machine.cpu
  in
  let srv =
    Nfs.Server.create e ~cpu:m.C.Machine.cpu ~fs:m.C.Machine.fs
      ~endpoints:[ Net.b_end link ] ()
  in
  C.Machine.run m (fun m ->
      let ep = Net.a_end link in
      let send xid call =
        let msg =
          Nfs.Proto.Call
            { xid; client = 0; call; sent = Sim.Engine.now e; span = None }
        in
        Net.send ep ~size:(Nfs.Proto.msg_size msg) msg
      in
      let recv () =
        match Net.recv ep with
        | Nfs.Proto.Reply { reply; _ } -> reply
        | Nfs.Proto.Call _ -> assert false
      in
      let create = Nfs.Proto.Create { dir = Nfs.Server.root_fh; name = "v" } in
      send 1 create;
      let fh =
        match recv () with
        | Nfs.Proto.R_fh { fh; _ } -> fh
        | _ -> Alcotest.fail "create failed"
      in
      send 2 (Nfs.Proto.Write { fh; off = 0; data = Bytes.make 2000 'x' });
      ignore (recv ());
      (* retransmit with the server up: cached reply, no re-apply *)
      send 1 create;
      (match recv () with
      | Nfs.Proto.R_fh { fh = fh'; _ } -> check_int "same handle" fh fh'
      | _ -> Alcotest.fail "dup replay failed");
      check_int "applied once while cached" 1 (Nfs.Server.applied srv "create");
      check_int "dup cache hit" 1 (Nfs.Server.stats srv).Nfs.Server.dup_hits;
      send 3 (Nfs.Proto.Getattr { fh });
      (match recv () with
      | Nfs.Proto.R_attr a -> check_int "data intact" 2000 a.Nfs.Proto.size
      | _ -> Alcotest.fail "getattr failed");
      (* server process dies and restarts; the disk survives, the dup
         cache does not *)
      Nfs.Server.crash srv;
      Nfs.Server.restart srv ~fs:m.C.Machine.fs;
      send 1 create;
      (match recv () with
      | Nfs.Proto.R_fh _ -> ()
      | _ -> Alcotest.fail "post-restart create failed");
      check_int "the retransmit re-executed" 2 (Nfs.Server.applied srv "create");
      send 4 (Nfs.Proto.Getattr { fh });
      match recv () with
      | Nfs.Proto.R_attr a ->
          check_int "re-applied CREATE truncated the file" 0 a.Nfs.Proto.size
      | _ -> Alcotest.fail "getattr failed")

let suites =
  [
    ( "jrnl",
      [
        Alcotest.test_case "log roundtrip" `Quick test_log_roundtrip;
        Alcotest.test_case "log wrap-around" `Quick test_log_wrap;
        Alcotest.test_case "torn tail detected" `Quick test_log_torn_tail;
        Alcotest.test_case "journaled namespace ops" `Quick
          test_journaled_namespace;
        Alcotest.test_case "read path unchanged" `Quick test_read_path_unchanged;
        Alcotest.test_case "pinned fragments reused safely" `Quick
          test_pinned_frag_reuse;
        Alcotest.test_case "syncer metrics" `Quick test_syncer_metrics;
      ] );
    ( "crashpoints",
      [
        Alcotest.test_case "systematic crash sweep" `Slow test_crash_sweep;
        Alcotest.test_case "random crash points" `Slow test_crash_point_random;
        Alcotest.test_case "orphan reaped at replay" `Quick test_orphan_reap;
        Alcotest.test_case "server crash ride-through" `Quick
          test_server_crash_ride_through;
        Alcotest.test_case "dup-cache replay window" `Quick
          test_dup_cache_window;
      ] );
  ]
