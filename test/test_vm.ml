(* Tests for the VM substrate: paging parameters, page flags, the
   unified page pool, and the two-handed-clock pageout daemon. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_param =
  {
    Vm.Param.physmem_pages = 32;
    pagesize = 8192;
    lotsfree = 8;
    desfree = 4;
    minfree = 2;
    handspread = 8;
    slowscan = 100;
    fastscan = 1000;
  }

let with_pool ?(param = small_param) f =
  let e = Sim.Engine.create () in
  let pool = Vm.Pool.create e param in
  let result = ref None in
  Sim.Engine.spawn e (fun () -> result := Some (f e pool));
  Sim.Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "pool test hung"

(* ---------- Param ---------- *)

let test_param_validation () =
  Vm.Param.validate small_param;
  Vm.Param.validate (Vm.Param.default ());
  let bad field =
    Alcotest.check_raises "invalid params" (Invalid_argument field) (fun () ->
        Vm.Param.validate
          (match field with
          | "Param: pagesize must be a positive power of two" ->
              { small_param with Vm.Param.pagesize = 3000 }
          | "Param: need 0 < minfree <= desfree <= lotsfree" ->
              { small_param with Vm.Param.minfree = 100 }
          | "Param: handspread" -> { small_param with Vm.Param.handspread = 0 }
          | _ -> assert false))
  in
  bad "Param: pagesize must be a positive power of two";
  bad "Param: need 0 < minfree <= desfree <= lotsfree";
  bad "Param: handspread"

let test_param_default_scales () =
  let p8 = Vm.Param.default ~memory_mb:8 () in
  check_int "8MB = 1024 frames" 1024 p8.Vm.Param.physmem_pages;
  let p64 = Vm.Param.default ~memory_mb:64 () in
  check_bool "lotsfree scales" true
    (p64.Vm.Param.lotsfree > p8.Vm.Param.lotsfree)

(* ---------- Page ---------- *)

let test_page_lock_protocol () =
  let e = Sim.Engine.create () in
  let p = Vm.Page.make ~frameno:0 ~pagesize:512 in
  let order = ref [] in
  Sim.Engine.spawn e (fun () ->
      Vm.Page.lock e p;
      order := `A_locked :: !order;
      Sim.Engine.sleep e 10;
      Vm.Page.unbusy p;
      order := `A_released :: !order);
  Sim.Engine.spawn e (fun () ->
      Vm.Page.lock e p;
      order := `B_locked :: !order;
      Vm.Page.unbusy p);
  Sim.Engine.run e;
  check_bool "lock ordering" true
    (List.rev !order = [ `A_locked; `A_released; `B_locked ])

let test_page_wait_unbusy () =
  let e = Sim.Engine.create () in
  let p = Vm.Page.make ~frameno:0 ~pagesize:512 in
  assert (Vm.Page.try_lock p);
  let waited = ref false in
  Sim.Engine.spawn e (fun () ->
      Vm.Page.wait_unbusy e p;
      waited := true);
  Sim.Engine.run e;
  check_bool "still waiting" false !waited;
  Vm.Page.unbusy p;
  Sim.Engine.run e;
  check_bool "woken" true !waited;
  check_bool "wait does not acquire" false p.Vm.Page.busy

(* ---------- Pool ---------- *)

let ident vid off = { Vm.Page.vid; off }

let test_pool_alloc_lookup_free () =
  with_pool (fun _e pool ->
      check_int "all free" 32 (Vm.Pool.freecnt pool);
      let p =
        match Vm.Pool.alloc pool (ident 1 0) with
        | `Fresh p -> p
        | `Existing _ -> Alcotest.fail "should be fresh"
      in
      check_int "one taken" 31 (Vm.Pool.freecnt pool);
      check_bool "fresh page busy" true p.Vm.Page.busy;
      Vm.Page.unbusy p;
      (match Vm.Pool.lookup pool (ident 1 0) with
      | Some q -> check_int "same frame" p.Vm.Page.frameno q.Vm.Page.frameno
      | None -> Alcotest.fail "lookup failed");
      check_bool "lookup sets ref bit" true p.Vm.Page.referenced;
      Vm.Page.lock _e p;
      Vm.Pool.free_page pool p;
      check_int "back to free" 32 (Vm.Pool.freecnt pool);
      check_bool "gone from cache" true (Vm.Pool.lookup pool (ident 1 0) = None);
      let s = Vm.Pool.stats pool in
      check_int "alloc count" 1 s.Vm.Pool.allocs;
      check_int "free count" 1 s.Vm.Pool.frees)

let test_pool_double_alloc_rejected () =
  with_pool (fun _e pool ->
      (match Vm.Pool.alloc pool (ident 1 0) with
      | `Fresh p -> Vm.Page.unbusy p
      | `Existing _ -> Alcotest.fail "fresh");
      Alcotest.check_raises "already cached"
        (Invalid_argument "Pool.alloc: ident already cached") (fun () ->
          ignore (Vm.Pool.alloc pool (ident 1 0))))

let test_pool_vnode_index () =
  with_pool (fun _e pool ->
      List.iter
        (fun off ->
          match Vm.Pool.alloc pool (ident 7 off) with
          | `Fresh p -> Vm.Page.unbusy p
          | `Existing _ -> ())
        [ 16384; 0; 8192 ];
      (match Vm.Pool.alloc pool (ident 8 0) with
      | `Fresh p -> Vm.Page.unbusy p
      | `Existing _ -> ());
      let offs =
        List.filter_map
          (fun (p : Vm.Page.t) ->
            Option.map (fun (i : Vm.Page.ident) -> i.Vm.Page.off) p.Vm.Page.ident)
          (Vm.Pool.pages_of_vnode pool 7)
      in
      Alcotest.(check (list int)) "sorted by offset" [ 0; 8192; 16384 ] offs;
      Vm.Pool.invalidate_vnode pool 7;
      check_int "invalidated" 0 (List.length (Vm.Pool.pages_of_vnode pool 7));
      check_int "other vnode untouched" 1
        (List.length (Vm.Pool.pages_of_vnode pool 8)))

let test_pool_alloc_blocks_until_free () =
  with_pool (fun e pool ->
      (* exhaust memory *)
      let pages = ref [] in
      for i = 0 to 31 do
        match Vm.Pool.alloc pool (ident 1 (i * 8192)) with
        | `Fresh p ->
            Vm.Page.unbusy p;
            pages := p :: !pages
        | `Existing _ -> ()
      done;
      check_int "exhausted" 0 (Vm.Pool.freecnt pool);
      let got = ref false in
      Sim.Engine.spawn e (fun () ->
          match Vm.Pool.alloc pool (ident 2 0) with
          | `Fresh p ->
              got := true;
              Vm.Page.unbusy p
          | `Existing _ -> ());
      Sim.Engine.sleep e 10;
      check_bool "allocator sleeping" false !got;
      (* free one page: the sleeper must get it *)
      let victim = List.hd !pages in
      Vm.Page.lock e victim;
      Vm.Pool.free_page pool victim;
      Sim.Engine.sleep e 10;
      check_bool "allocator woken" true !got;
      check_int "alloc_waits recorded" 1 (Vm.Pool.stats pool).Vm.Pool.alloc_waits)

(* ---------- Pageout ---------- *)

(* The daemon scans for as long as the shortage persists, so drive the
   engine for a bounded slice of virtual time instead of to quiescence
   (a machine with un-flushable dirty pages never goes quiescent —
   which is itself the behaviour one of these tests asserts). *)
let with_daemon f =
  let e = Sim.Engine.create () in
  let pool = Vm.Pool.create e small_param in
  let cpu = Sim.Cpu.create e in
  let daemon = Vm.Pageout.start pool cpu in
  let result = ref None in
  Sim.Engine.spawn e (fun () -> result := Some (f e pool daemon));
  Sim.Engine.run_for e (Sim.Time.sec 30);
  match !result with Some r -> r | None -> Alcotest.fail "daemon test hung"

let fill_unreferenced pool n =
  for i = 0 to n - 1 do
    match Vm.Pool.alloc pool (ident 1 (i * 8192)) with
    | `Fresh p ->
        Vm.Page.set_valid p true;
        Vm.Page.set_referenced p false;
        Vm.Page.unbusy p
    | `Existing _ -> ()
  done

let test_pageout_frees_clean_pages () =
  with_daemon (fun e pool daemon ->
      fill_unreferenced pool 30;
      check_bool "below lotsfree" true (Vm.Pool.shortage pool > 0);
      (* let the daemon run a while *)
      Sim.Engine.sleep e (Sim.Time.sec 2);
      check_bool "daemon freed pages" true
        ((Vm.Pageout.stats daemon).Vm.Pageout.freed > 0);
      check_bool "shortage relieved" true (Vm.Pool.shortage pool = 0))

let test_pageout_respects_reference_bits () =
  (* a wide handspread and moderate scan rate, so a page touched between
     the front hand's clear and the back hand's visit survives — the
     touch period (30 ms) is well inside the hands' gap (16 frames at
     ~4 frames per 20 ms tick = ~80 ms) *)
  let param =
    { small_param with Vm.Param.handspread = 16; slowscan = 50; fastscan = 200 }
  in
  let e = Sim.Engine.create () in
  let pool = Vm.Pool.create e param in
  let cpu = Sim.Cpu.create e in
  let daemon = Vm.Pageout.start pool cpu in
  Sim.Engine.spawn e (fun () ->
      fill_unreferenced pool 30;
      (* keep touching the first 6 pages: they must survive *)
      for round = 1 to 60 do
        ignore round;
        for i = 0 to 5 do
          ignore (Vm.Pool.lookup pool (ident 1 (i * 8192)))
        done;
        Sim.Engine.sleep e (Sim.Time.ms 30)
      done;
      check_bool "daemon freed the cold pages" true
        ((Vm.Pageout.stats daemon).Vm.Pageout.freed > 0);
      for i = 0 to 5 do
        check_bool "hot page survived" true
          (Vm.Pool.lookup pool (ident 1 (i * 8192)) <> None)
      done);
  Sim.Engine.run_for e (Sim.Time.sec 30)

let test_pageout_flushes_dirty_via_flusher () =
  with_daemon (fun e pool daemon ->
      let flushed = ref [] in
      Vm.Pool.register_flusher pool 1 (fun p ~free_after ->
          (match p.Vm.Page.ident with
          | Some i -> flushed := i.Vm.Page.off :: !flushed
          | None -> ());
          Vm.Page.set_dirty p false;
          if free_after then Vm.Pool.free_page pool p else Vm.Page.unbusy p;
          1);
      for i = 0 to 29 do
        match Vm.Pool.alloc pool (ident 1 (i * 8192)) with
        | `Fresh p ->
            Vm.Page.set_valid p true;
            Vm.Page.set_dirty p true;
            Vm.Page.set_referenced p false;
            Vm.Page.unbusy p
        | `Existing _ -> ()
      done;
      Sim.Engine.sleep e (Sim.Time.sec 2);
      check_bool "dirty pages flushed" true (List.length !flushed > 0);
      check_bool "flush stat counted" true
        ((Vm.Pageout.stats daemon).Vm.Pageout.flushed > 0);
      check_bool "memory recovered" true (Vm.Pool.shortage pool = 0))

let test_pageout_skips_dirty_without_flusher () =
  with_daemon (fun e pool daemon ->
      for i = 0 to 29 do
        match Vm.Pool.alloc pool (ident 99 (i * 8192)) with
        | `Fresh p ->
            Vm.Page.set_valid p true;
            Vm.Page.set_dirty p true;
            Vm.Page.set_referenced p false;
            Vm.Page.unbusy p
        | `Existing _ -> ()
      done;
      Sim.Engine.sleep e (Sim.Time.sec 1);
      check_bool "skip counted" true
        ((Vm.Pageout.stats daemon).Vm.Pageout.skipped_no_flusher > 0);
      check_int "nothing freed (all dirty, no flusher)" 30
        (List.length (Vm.Pool.pages_of_vnode pool 99)))

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "param validation" `Quick test_param_validation;
        Alcotest.test_case "param default scales" `Quick
          test_param_default_scales;
        Alcotest.test_case "page lock protocol" `Quick test_page_lock_protocol;
        Alcotest.test_case "page wait_unbusy" `Quick test_page_wait_unbusy;
        Alcotest.test_case "pool alloc/lookup/free" `Quick
          test_pool_alloc_lookup_free;
        Alcotest.test_case "pool double alloc" `Quick
          test_pool_double_alloc_rejected;
        Alcotest.test_case "pool vnode index" `Quick test_pool_vnode_index;
        Alcotest.test_case "pool alloc blocks" `Quick
          test_pool_alloc_blocks_until_free;
        Alcotest.test_case "pageout frees clean" `Quick
          test_pageout_frees_clean_pages;
        Alcotest.test_case "pageout reference bits" `Quick
          test_pageout_respects_reference_bits;
        Alcotest.test_case "pageout flushes dirty" `Quick
          test_pageout_flushes_dirty_via_flusher;
        Alcotest.test_case "pageout skips no-flusher" `Quick
          test_pageout_skips_dirty_without_flusher;
      ] );
  ]

(* ---------- Seg: address spaces (the paper's figure 1) ---------- *)

let mk_backed_mapping e pool asp ~vid ~len =
  Vm.Seg.map asp ~len ~pagesize:8192
    ~fault:(fun ~off ->
      match Vm.Pool.lookup pool (ident vid off) with
      | Some p -> p
      | None -> (
          match Vm.Pool.alloc pool (ident vid off) with
          | `Fresh p ->
              Vm.Page.set_valid p true;
              Vm.Page.unbusy p;
              p
          | `Existing p -> p))
    ()
  |> fun m ->
  ignore e;
  m

let test_seg_figure1 () =
  (* figure 1: an address space of two file mappings (a.out + libc.so) *)
  with_pool (fun e pool ->
      let asp = Vm.Seg.create e in
      let a_out = mk_backed_mapping e pool asp ~vid:10 ~len:(3 * 8192) in
      let libc = mk_backed_mapping e pool asp ~vid:11 ~len:(2 * 8192) in
      check_bool "mappings do not overlap" true
        (Vm.Seg.base libc >= Vm.Seg.base a_out + Vm.Seg.length a_out);
      check_int "two mappings" 2 (List.length (Vm.Seg.mappings asp));
      (* faults resolve to the right backing object *)
      let p = Vm.Seg.fault asp (Vm.Seg.base a_out + 8192) in
      (match p.Vm.Page.ident with
      | Some i ->
          check_int "a.out vnode" 10 i.Vm.Page.vid;
          check_int "offset within mapping" 8192 i.Vm.Page.off
      | None -> Alcotest.fail "page has no identity");
      let q = Vm.Seg.fault asp (Vm.Seg.base libc + 100) in
      (match q.Vm.Page.ident with
      | Some i -> check_int "libc vnode" 11 i.Vm.Page.vid
      | None -> Alcotest.fail "page has no identity");
      (* translations stick: a second touch is not a fault *)
      let f0 = Vm.Seg.faults asp in
      ignore (Vm.Seg.fault asp (Vm.Seg.base a_out + 8192));
      check_int "no second fault" f0 (Vm.Seg.faults asp);
      check_bool "translated" true (Vm.Seg.translated asp (Vm.Seg.base a_out + 8192));
      (* MMU flush forces a refault *)
      Vm.Seg.invalidate asp a_out;
      check_bool "flushed" false (Vm.Seg.translated asp (Vm.Seg.base a_out + 8192));
      ignore (Vm.Seg.fault asp (Vm.Seg.base a_out + 8192));
      check_int "refaulted" (f0 + 1) (Vm.Seg.faults asp))

let test_seg_errors () =
  with_pool (fun e pool ->
      let asp = Vm.Seg.create e in
      let m = mk_backed_mapping e pool asp ~vid:12 ~len:8192 in
      check_bool "segv on unmapped address" true
        (match Vm.Seg.fault asp 0 with
        | exception Not_found -> true
        | _ -> false);
      Alcotest.check_raises "overlap rejected"
        (Invalid_argument "Seg.map: overlapping mapping") (fun () ->
          ignore
            (Vm.Seg.map asp ~addr:(Vm.Seg.base m) ~len:8192 ~pagesize:8192
               ~fault:(fun ~off:_ -> assert false)
               ()));
      Vm.Seg.unmap asp m;
      check_bool "fault after unmap is segv" true
        (match Vm.Seg.fault asp (Vm.Seg.base m) with
        | exception Not_found -> true
        | _ -> false);
      Alcotest.check_raises "double unmap"
        (Invalid_argument "Seg.unmap: unknown mapping") (fun () ->
          Vm.Seg.unmap asp m))

let test_seg_freed_page_refaults () =
  (* the soft TLB must not return a page whose frame was reclaimed *)
  with_pool (fun e pool ->
      let asp = Vm.Seg.create e in
      let m = mk_backed_mapping e pool asp ~vid:13 ~len:8192 in
      let p = Vm.Seg.fault asp (Vm.Seg.base m) in
      Vm.Page.lock e p;
      Vm.Pool.free_page pool p;
      check_bool "translation dropped with the frame" false
        (Vm.Seg.translated asp (Vm.Seg.base m));
      let p2 = Vm.Seg.fault asp (Vm.Seg.base m) in
      check_bool "refault produced a live page" true
        (p2.Vm.Page.ident <> None))

let seg_suite =
  [
    Alcotest.test_case "seg figure 1" `Quick test_seg_figure1;
    Alcotest.test_case "seg errors" `Quick test_seg_errors;
    Alcotest.test_case "seg freed page refaults" `Quick
      test_seg_freed_page_refaults;
  ]

let suites =
  match suites with
  | [ (name, cases) ] -> [ (name, cases @ seg_suite) ]
  | other -> other
