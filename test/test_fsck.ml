(* fsck: clean file systems pass; injected corruption of every class is
   detected. *)

let check_bool = Alcotest.(check bool)

(* Build a populated, unmounted file system and return the machine. *)
let populated () =
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Fs.mkdir fs "/dir";
      Ufs.Fs.mkdir fs "/dir/sub";
      let ip = Ufs.Fs.creat fs "/dir/file1" in
      Helpers.write_pattern fs ip ~seed:1 ~off:0 ~len:50_000;
      Ufs.Iops.iput fs ip;
      let ip = Ufs.Fs.creat fs "/dir/sub/file2" in
      Helpers.write_pattern fs ip ~seed:2 ~off:0 ~len:3_000;
      Ufs.Iops.iput fs ip;
      Ufs.Fs.link fs "/dir/file1" "/dir/hardlink";
      Ufs.Fs.symlink fs ~target:"/dir/file1" ~path:"/dir/sym";
      Ufs.Fs.unlink fs "/dir/sub/file2";
      let ip = Ufs.Fs.creat fs "/dir/sub/file3" in
      Helpers.write_pattern fs ip ~seed:3 ~off:0 ~len:120_000;
      Ufs.Iops.iput fs ip;
      Ufs.Fs.unmount fs);
  m

let test_fresh_fs_clean () =
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m -> Ufs.Fs.unmount m.Clusterfs.Machine.fs);
  let r = Ufs.Fsck.check m.Clusterfs.Machine.dev in
  Alcotest.(check (list string)) "no problems" [] r.Ufs.Fsck.problems;
  Alcotest.(check int) "one dir (root)" 1 r.Ufs.Fsck.ndirs

let test_populated_fs_clean () =
  let m = populated () in
  let r = Ufs.Fsck.check m.Clusterfs.Machine.dev in
  Alcotest.(check (list string)) "no problems" [] r.Ufs.Fsck.problems;
  Alcotest.(check int) "files" 2 r.Ufs.Fsck.nfiles;
  Alcotest.(check int) "dirs" 3 r.Ufs.Fsck.ndirs;
  Alcotest.(check int) "symlinks" 1 r.Ufs.Fsck.nsymlinks

(* ---------- corruption injection ---------- *)

(* read/patch/write a dinode on the raw store *)
let patch_dinode m inum f =
  let dev = m.Clusterfs.Machine.dev in
  let st = Disk.Blkdev.store dev in
  let sb =
    let b = Bytes.create Ufs.Layout.bsize in
    Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
      ~len:Ufs.Layout.bsize b 0;
    Ufs.Superblock.decode b
  in
  let frag, byte = Ufs.Cg.dinode_loc sb inum in
  let blk_frag = frag - (frag mod Ufs.Layout.fpb) in
  let off =
    Ufs.Layout.frag_to_byte blk_frag
    + ((frag mod Ufs.Layout.fpb) * Ufs.Layout.fsize)
    + byte
  in
  let b = Bytes.create Ufs.Layout.dinode_bytes in
  Disk.Store.read st ~off ~len:Ufs.Layout.dinode_bytes b 0;
  let d = Ufs.Dinode.decode b 0 in
  f d;
  Ufs.Dinode.encode d b 0;
  Disk.Store.write st ~off ~len:Ufs.Layout.dinode_bytes b 0

(* find some allocated file inode > root *)
let find_file_inum m =
  let dev = m.Clusterfs.Machine.dev in
  let st = Disk.Blkdev.store dev in
  let sb =
    let b = Bytes.create Ufs.Layout.bsize in
    Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
      ~len:Ufs.Layout.bsize b 0;
    Ufs.Superblock.decode b
  in
  let ninodes = sb.Ufs.Superblock.ncg * sb.Ufs.Superblock.ipg in
  let rec loop i =
    if i >= ninodes then Alcotest.fail "no file inode found"
    else begin
      let frag, byte = Ufs.Cg.dinode_loc sb i in
      let blk = frag - (frag mod Ufs.Layout.fpb) in
      let b = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte blk) ~len:Ufs.Layout.bsize b 0;
      let d =
        Ufs.Dinode.decode b (((frag mod Ufs.Layout.fpb) * Ufs.Layout.fsize) + byte)
      in
      if d.Ufs.Dinode.kind = Ufs.Dinode.Reg && d.Ufs.Dinode.size > 10000 then i
      else loop (i + 1)
    end
  in
  loop 3

let detects what mutate =
  let m = populated () in
  mutate m;
  let r = Ufs.Fsck.check m.Clusterfs.Machine.dev in
  check_bool
    (Printf.sprintf "%s detected (problems: %s)" what
       (String.concat "; " r.Ufs.Fsck.problems))
    true
    (r.Ufs.Fsck.problems <> [])

let test_detects_bad_nlink () =
  detects "wrong link count" (fun m ->
      let inum = find_file_inum m in
      patch_dinode m inum (fun d -> d.Ufs.Dinode.nlink <- d.Ufs.Dinode.nlink + 1))

let test_detects_out_of_range_pointer () =
  detects "pointer outside data area" (fun m ->
      let inum = find_file_inum m in
      patch_dinode m inum (fun d -> d.Ufs.Dinode.db.(0) <- 7 (* boot area *)))

let test_detects_bad_blocks_count () =
  detects "di_blocks mismatch" (fun m ->
      let inum = find_file_inum m in
      patch_dinode m inum (fun d -> d.Ufs.Dinode.blocks <- d.Ufs.Dinode.blocks + 1))

let test_detects_double_claim () =
  detects "multiply-claimed fragment" (fun m ->
      let inum = find_file_inum m in
      patch_dinode m inum (fun d -> d.Ufs.Dinode.db.(1) <- d.Ufs.Dinode.db.(0)))

let test_detects_orphan_inode () =
  detects "allocated but unreferenced inode" (fun m ->
      let inum = find_file_inum m in
      (* clone the dinode into a free slot without any directory entry *)
      patch_dinode m (inum + 200) (fun d ->
          d.Ufs.Dinode.kind <- Ufs.Dinode.Reg;
          d.Ufs.Dinode.nlink <- 1;
          d.Ufs.Dinode.size <- 0))

let test_detects_free_but_used () =
  detects "fragment in use but marked free" (fun m ->
      let dev = m.Clusterfs.Machine.dev in
      let st = Disk.Blkdev.store dev in
      let b = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
        ~len:Ufs.Layout.bsize b 0;
      let sb = Ufs.Superblock.decode b in
      (* find the first file inode and free its first fragment's bit *)
      let inum = find_file_inum m in
      let frag, byte = Ufs.Cg.dinode_loc sb inum in
      let blk = frag - (frag mod Ufs.Layout.fpb) in
      let ib = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte blk) ~len:Ufs.Layout.bsize ib 0;
      let d =
        Ufs.Dinode.decode ib (((frag mod Ufs.Layout.fpb) * Ufs.Layout.fsize) + byte)
      in
      let data_frag = d.Ufs.Dinode.db.(0) in
      let c = Ufs.Superblock.cg_of_frag sb data_frag in
      let hdr = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st
        ~off:(Ufs.Layout.frag_to_byte (Ufs.Cg.header_frag sb c))
        ~len:Ufs.Layout.bsize hdr 0;
      let cg = Ufs.Cg.decode hdr sb c in
      Ufs.Cg.set_frag cg sb data_frag ~free:true;
      Disk.Store.write st
        ~off:(Ufs.Layout.frag_to_byte (Ufs.Cg.header_frag sb c))
        ~len:Ufs.Layout.bsize (Ufs.Cg.encode cg sb) 0)

let test_detects_summary_corruption () =
  detects "summary count corruption" (fun m ->
      let dev = m.Clusterfs.Machine.dev in
      let st = Disk.Blkdev.store dev in
      let b = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
        ~len:Ufs.Layout.bsize b 0;
      let sb = Ufs.Superblock.decode b in
      sb.Ufs.Superblock.nbfree <- sb.Ufs.Superblock.nbfree + 5;
      Disk.Store.write st ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
        ~len:Ufs.Layout.bsize (Ufs.Superblock.encode sb) 0)

let test_detects_bad_dotdot () =
  detects "bad .. entry" (fun m ->
      (* /dir's data: rewrite the .. entry to point at a wrong inode.
         Find /dir via the root directory's entries on disk. *)
      let dev = m.Clusterfs.Machine.dev in
      let st = Disk.Blkdev.store dev in
      let b = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
        ~len:Ufs.Layout.bsize b 0;
      let sb = Ufs.Superblock.decode b in
      (* root dinode -> first data frag -> scan entries for "dir" *)
      let rfrag, rbyte = Ufs.Cg.dinode_loc sb Ufs.Types.rootino in
      let rblk = rfrag - (rfrag mod Ufs.Layout.fpb) in
      let rb = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte rblk) ~len:Ufs.Layout.bsize rb 0;
      let rootd =
        Ufs.Dinode.decode rb (((rfrag mod Ufs.Layout.fpb) * Ufs.Layout.fsize) + rbyte)
      in
      let data = Bytes.create rootd.Ufs.Dinode.size in
      Disk.Store.read st
        ~off:(Ufs.Layout.frag_to_byte rootd.Ufs.Dinode.db.(0))
        ~len:rootd.Ufs.Dinode.size data 0;
      let dir_inum = ref 0 in
      for i = 0 to (rootd.Ufs.Dinode.size / Ufs.Dir.entry_size) - 1 do
        let off = i * Ufs.Dir.entry_size in
        let inum = Ufs.Codec.get_u32 data off in
        let len = Ufs.Codec.get_u8 data (off + 4) in
        if inum <> 0 && Bytes.sub_string data (off + 5) len = "dir" then
          dir_inum := inum
      done;
      check_bool "found /dir" true (!dir_inum <> 0);
      (* /dir's first data fragment holds its "." and ".." entries *)
      let dfrag, dbyte = Ufs.Cg.dinode_loc sb !dir_inum in
      let dblk = dfrag - (dfrag mod Ufs.Layout.fpb) in
      let db = Bytes.create Ufs.Layout.bsize in
      Disk.Store.read st ~off:(Ufs.Layout.frag_to_byte dblk) ~len:Ufs.Layout.bsize db 0;
      let dird =
        Ufs.Dinode.decode db (((dfrag mod Ufs.Layout.fpb) * Ufs.Layout.fsize) + dbyte)
      in
      let dirdata_off = Ufs.Layout.frag_to_byte dird.Ufs.Dinode.db.(0) in
      let e = Bytes.create Ufs.Dir.entry_size in
      Disk.Store.read st
        ~off:(dirdata_off + Ufs.Dir.entry_size)
        ~len:Ufs.Dir.entry_size e 0;
      Ufs.Codec.put_u32 e 0 !dir_inum (* .. should be root; point it at self *);
      Disk.Store.write st
        ~off:(dirdata_off + Ufs.Dir.entry_size)
        ~len:Ufs.Dir.entry_size e 0)

let test_clean_after_heavy_churn () =
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let rng = Sim.Rng.create ~seed:99 in
      let opts =
        {
          Ufs.Ager.defaults with
          Ufs.Ager.target_util = 0.5;
          churn_rounds = 2;
          large_max_kb = 256;
        }
      in
      ignore (Ufs.Ager.age fs ~rng ~opts ());
      Ufs.Fs.unmount fs);
  let r = Ufs.Fsck.check m.Clusterfs.Machine.dev in
  Alcotest.(check (list string)) "clean after churn" [] r.Ufs.Fsck.problems;
  check_bool "real population" true (r.Ufs.Fsck.nfiles > 20)

let suites =
  [
    ( "ufs-fsck",
      [
        Alcotest.test_case "fresh fs clean" `Quick test_fresh_fs_clean;
        Alcotest.test_case "populated fs clean" `Quick test_populated_fs_clean;
        Alcotest.test_case "detects bad nlink" `Quick test_detects_bad_nlink;
        Alcotest.test_case "detects bad pointer" `Quick
          test_detects_out_of_range_pointer;
        Alcotest.test_case "detects di_blocks mismatch" `Quick
          test_detects_bad_blocks_count;
        Alcotest.test_case "detects double claim" `Quick
          test_detects_double_claim;
        Alcotest.test_case "detects orphan inode" `Quick
          test_detects_orphan_inode;
        Alcotest.test_case "detects free-but-used frag" `Quick
          test_detects_free_but_used;
        Alcotest.test_case "detects summary corruption" `Quick
          test_detects_summary_corruption;
        Alcotest.test_case "detects bad dotdot" `Quick test_detects_bad_dotdot;
        Alcotest.test_case "clean after churn" `Slow
          test_clean_after_heavy_churn;
      ] );
  ]
