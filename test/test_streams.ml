(* Per-stream read-ahead and flush batching: the figure 10/11 goldens
   are frozen byte-for-byte, interleaved sequential readers each keep
   cluster read-ahead (locally and over NFS), the server still gathers
   eight interleaving client write streams into multi-block disk
   writes, and the NFS client's predictor survives backward seeks
   instead of inheriting a read-ahead frontier it can never catch. *)

module Exp = Clusterfs.Experiments

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- figure 10/11 goldens ---------- *)

(* Captured from the seed before the per-stream window and flush
   batching work: single-stream behaviour must not move at all. *)
let golden_fig10 =
  [
    "A 1588.228805 1286.968128 1281.108960 484.549542 541.080722";
    "B 789.651859 787.941722 787.847756 480.714782 535.260200";
    "C 778.181804 787.941722 787.847756 480.748635 535.260200";
    "D 778.323464 787.044888 787.847756 480.748635 537.211962";
    "A/B 2.011303 1.633329 1.626087 1.007977 1.010874";
    "A/C 2.040948 1.633329 1.626087 1.007906 1.010874";
    "A/D 2.040577 1.635190 1.626087 1.007906 1.007202";
  ]

let fmt label (r : Exp.iobench_row) =
  Printf.sprintf "%s %.6f %.6f %.6f %.6f %.6f" label r.Exp.fsr r.Exp.fsu
    r.Exp.fsw r.Exp.frr r.Exp.fru

let test_fig10_golden () =
  let rows = Exp.figure10 ~file_mb:8 () in
  let lines =
    List.map (fun r -> fmt r.Exp.config r) rows
    @ List.map
        (fun (l, r) -> fmt l r)
        (Exp.ratios rows ~base:"A" ~others:[ "B"; "C"; "D" ])
  in
  check_string "figure 10/11 rows byte-identical to the seed"
    (String.concat "\n" golden_fig10)
    (String.concat "\n" lines)

(* ---------- interleaved sequential readers ---------- *)

let spec_of s =
  match Fio.Spec.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "spec %S did not parse: %s" s e

(* 20 ms mean think time makes each stream latency-bound, so a healthy
   per-stream predictor lets two readers overlap their stalls; the
   collapse this PR fixes showed the pair *slower* than one stream. *)
let ilv_single =
  spec_of "name=s file=ilv rw=read bs=8k size=2m think=20000 seed=21"

let ilv_pair =
  spec_of
    "name=p file=ilv rw=read bs=8k size=2m numjobs=2 share=1 \
     offset_increment=2m think=20000 seed=21"

let run_local spec =
  let m = Clusterfs.Machine.create Clusterfs.Config.config_a in
  let jobs =
    Clusterfs.Machine.run m (fun m ->
        Fio.Run.execute (Fio.Target.local m) spec)
  in
  (m, Fio.Report.make spec ~target:"local" jobs)

let test_interleaved_local () =
  let _, rs = run_local ilv_single in
  let m, rp = run_local ilv_pair in
  let bs = Fio.Report.bandwidth_kbps rs in
  let bp = Fio.Report.bandwidth_kbps rp in
  check_bool
    (Printf.sprintf "pair aggregate within 25%% of 2x single (%.0f vs %.0f)"
       bp bs)
    true
    (bp >= 1.5 *. bs);
  let st = m.Clusterfs.Machine.fs.Ufs.Types.stats in
  check_bool "second reader got its own window" true
    (st.Ufs.Types.ra_streams >= 1);
  (* both halves were read ahead in cluster-sized chunks: enough
     read-ahead I/Os to cover the whole file, each nearly a full
     cluster (15 blocks under config A) *)
  check_bool "read-ahead covered both streams" true
    (st.Ufs.Types.ra_ios >= 28);
  check_bool "read-ahead I/Os stayed cluster-sized" true
    (float_of_int st.Ufs.Types.ra_blocks
     /. float_of_int (max 1 st.Ufs.Types.ra_ios)
    >= 10.)

let test_interleaved_remote () =
  let run spec =
    let t = Clusterfs.Topology.create ~clients:1 Clusterfs.Config.config_a in
    let jobs =
      Clusterfs.Topology.run t (fun t ->
          Fio.Run.execute (Fio.Target.remote t) spec)
    in
    (t, Fio.Report.make spec ~target:"remote" jobs)
  in
  let _, rs = run ilv_single in
  let t, rp = run ilv_pair in
  let bs = Fio.Report.bandwidth_kbps rs in
  let bp = Fio.Report.bandwidth_kbps rp in
  check_bool
    (Printf.sprintf
       "remote pair aggregate within 25%% of 2x single (%.0f vs %.0f)" bp bs)
    true
    (bp >= 1.5 *. bs);
  let st =
    Nfs.Client.stats t.Clusterfs.Topology.clients.(0).Clusterfs.Topology.mount
  in
  check_bool "client made a window for the second reader" true
    (st.Nfs.Client.ra_streams >= 1);
  check_bool "client read ahead over both halves" true
    (st.Nfs.Client.ra_issued >= 28)

(* ---------- server write gathering under interleaved writers ---------- *)

let test_write_gather_8_clients () =
  let g = Fio.Scenarios.write_gather ~clients:8 () in
  check_bool "clients wrote through RPCs" true (g.Fio.Scenarios.write_rpcs > 0);
  check_bool
    (Printf.sprintf "disk writes stay clustered at 8 clients (%.1f blocks)"
       g.Fio.Scenarios.blocks_per_disk_write)
    true
    (g.Fio.Scenarios.blocks_per_disk_write >= 8.)

(* ---------- client backward seek ---------- *)

(* A 10 MB file against the mount's 8 MB cache: pass one reads it all
   (early pages evicted), then the reader seeks back to 0.  The old
   shared [nextrio] frontier only grew, so the re-read got no
   read-ahead at all; the repointed window must start a fresh
   frontier.  Separately, prefetched pages dropped without a use must
   show up in the wasted counter — that is the signal the adaptive
   window shrinks on. *)
let test_backward_seek () =
  let t = Clusterfs.Topology.create ~clients:1 Clusterfs.Config.config_a in
  Clusterfs.Topology.run t (fun t ->
      let m = t.Clusterfs.Topology.clients.(0).Clusterfs.Topology.mount in
      let st = Nfs.Client.stats m in
      let f = Nfs.Client.create m "big" in
      let mb = 1024 * 1024 in
      let chunk = Bytes.create 65536 in
      for i = 0 to (10 * mb / 65536) - 1 do
        Nfs.Client.write f ~off:(i * 65536) ~buf:chunk ~len:65536
      done;
      Nfs.Client.fsync f;
      Nfs.Client.invalidate f;
      let buf = Bytes.create 8192 in
      let readseq n =
        for i = 0 to n - 1 do
          ignore (Nfs.Client.read f ~off:(i * 8192) ~buf ~len:8192)
        done
      in
      readseq (10 * mb / 8192);
      let r1 = st.Nfs.Client.ra_issued in
      check_bool "first pass read ahead" true (r1 > 0);
      (* seek back to 0 and re-read the (evicted) first 2 MB *)
      readseq (2 * mb / 8192);
      check_bool
        (Printf.sprintf "read-ahead resumed after the backward seek (%d -> %d)"
           r1 st.Nfs.Client.ra_issued)
        true
        (st.Nfs.Client.ra_issued >= r1 + 8);
      (* wasted prefetch: a short sequential burst triggers cluster
         read-ahead, then the file is dropped before the pages are
         touched *)
      let g = Nfs.Client.create m "short" in
      let b = Bytes.create 65536 in
      for i = 0 to 2 do
        Nfs.Client.write g ~off:(i * 65536) ~buf:b ~len:65536
      done;
      Nfs.Client.fsync g;
      Nfs.Client.invalidate g;
      let w0 = st.Nfs.Client.ra_wasted in
      ignore (Nfs.Client.read g ~off:0 ~buf ~len:8192);
      ignore (Nfs.Client.read g ~off:8192 ~buf ~len:8192);
      (* let the biod's prefetch land before dropping the pages *)
      Sim.Engine.sleep (Clusterfs.Topology.engine t) 1_000_000;
      Nfs.Client.invalidate g;
      check_bool "unused prefetched pages counted as wasted" true
        (st.Nfs.Client.ra_wasted > w0))

let suites =
  [
    ( "streams",
      [
        Alcotest.test_case "figure 10/11 goldens unchanged" `Slow
          test_fig10_golden;
        Alcotest.test_case "interleaved pair ~2x single, local" `Slow
          test_interleaved_local;
        Alcotest.test_case "interleaved pair ~2x single, remote" `Slow
          test_interleaved_remote;
        Alcotest.test_case "write gathering holds at 8 clients" `Slow
          test_write_gather_8_clients;
        Alcotest.test_case "client read-ahead survives backward seek" `Slow
          test_backward_seek;
      ] );
  ]
