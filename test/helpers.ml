(* Shared scaffolding for the test suites: small, fast machines. *)

(* ~20 MB drive: big enough for multi-group allocation, small enough
   that every test machine builds instantly. *)
let small_geom =
  Disk.Geom.create ~rpm:4316 ~nheads:4
    ~zones:[ { Disk.Geom.cyls = 200; spt = 48 } ]
    ()

let small_mkfs =
  {
    Ufs.Fs.mkfs_defaults with
    Ufs.Fs.fpg = 4096 (* 4 MB groups *);
    ipg = 512;
    rotdelay_ms = 0;
    maxcontig = 8;
  }

let small_disk = { Disk.Device.default_config with Disk.Device.geom = small_geom }

let config ?(name = "test") ?(memory_mb = 4) ?(mkfs = small_mkfs)
    ?(features = Ufs.Types.features_clustered) ?(disk = small_disk)
    ?(vol = Clusterfs.Config.single_disk) () =
  {
    Clusterfs.Config.name;
    disk;
    vol;
    memory_mb;
    mkfs;
    features;
    costs = Ufs.Costs.default;
  }

let machine ?name ?memory_mb ?mkfs ?features ?disk ?vol () =
  Clusterfs.Machine.create (config ?name ?memory_mb ?mkfs ?features ?disk ?vol ())

(* Run [f] on a fresh small machine inside a simulation process. *)
let in_machine ?name ?memory_mb ?mkfs ?features ?disk ?vol f =
  let m = machine ?name ?memory_mb ?mkfs ?features ?disk ?vol () in
  Clusterfs.Machine.run m (fun m -> f m)

(* Deterministic file contents: byte at absolute offset [o] of a file
   seeded with [seed]. *)
let pattern_byte ~seed o = Char.chr ((o + (seed * 131)) land 0xff)

let write_pattern fs ip ~seed ~off ~len =
  let buf = Bytes.init len (fun i -> pattern_byte ~seed (off + i)) in
  Ufs.Fs.write fs ip ~off ~buf ~len

let check_pattern fs ip ~seed ~off ~len =
  let buf = Bytes.create len in
  let n = Ufs.Fs.read fs ip ~off ~buf ~len in
  Alcotest.(check int) "read length" len n;
  let ok = ref true in
  for i = 0 to len - 1 do
    if Bytes.get buf i <> pattern_byte ~seed (off + i) then ok := false
  done;
  Alcotest.(check bool)
    (Printf.sprintf "pattern intact at [%d,%d)" off (off + len))
    true !ok

let fsck_clean m =
  Clusterfs.Machine.run m (fun m -> Ufs.Fs.unmount m.Clusterfs.Machine.fs);
  let report = Ufs.Fsck.check m.Clusterfs.Machine.dev in
  Alcotest.(check (list string)) "fsck problems" [] report.Ufs.Fsck.problems

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)
