let () =
  Alcotest.run "clusterfs"
    (Test_sim.suites @ Test_disk.suites @ Test_vm.suites @ Test_vfs.suites
   @ Test_ufs_format.suites @ Test_alloc.suites @ Test_bmap.suites
   @ Test_cluster.suites @ Test_fs.suites @ Test_fsck.suites
   @ Test_workload.suites @ Test_integration.suites @ Test_props.suites
   @ Test_border.suites @ Test_crash.suites @ Test_metabuf.suites
   @ Test_dir.suites @ Test_concurrency.suites @ Test_disk_props.suites
   @ Test_efs.suites @ Test_vol.suites @ Test_metrics.suites @ Test_nfs.suites
   @ Test_fio.suites @ Test_streams.suites @ Test_json.suites
   @ Test_span.suites @ Test_jrnl.suites)
