(* Crash simulation: a power failure leaves the disk exactly as the
   completed writes left it.  fsck must always notice the unclean
   mount; after a sync(2) the image must be consistent apart from that
   flag; and synchronous directory metadata keeps the namespace intact
   even for files created right before the crash. *)

let check_bool = Alcotest.(check bool)

let fsck_of_store store =
  let e = Sim.Engine.create () in
  let dev = Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk) in
  Disk.Store.copy_into store (Disk.Blkdev.store dev);
  Ufs.Fsck.check dev

let only_unclean (r : Ufs.Fsck.report) =
  r.Ufs.Fsck.problems = [ "file system was not unmounted cleanly" ]

let test_crash_detected () =
  let m = Helpers.machine () in
  let store =
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        let ip = Ufs.Fs.creat fs "/x" in
        Helpers.write_pattern fs ip ~seed:1 ~off:0 ~len:50_000;
        Ufs.Iops.iput fs ip;
        (* no unmount, no sync: pull the plug *)
        Clusterfs.Machine.crash m)
  in
  let r = fsck_of_store store in
  check_bool "unclean mount flagged" true
    (List.mem "file system was not unmounted cleanly" r.Ufs.Fsck.problems)

let test_crash_after_sync_consistent () =
  let m = Helpers.machine () in
  let store =
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        Ufs.Fs.mkdir fs "/d";
        for i = 0 to 20 do
          let ip = Ufs.Fs.creat fs (Printf.sprintf "/d/f%d" i) in
          Helpers.write_pattern fs ip ~seed:i ~off:0 ~len:(3000 * (1 + (i mod 4)));
          Ufs.Iops.iput fs ip
        done;
        Ufs.Fs.unlink fs "/d/f5";
        Ufs.Fs.sync fs;
        Clusterfs.Machine.crash m)
  in
  let r = fsck_of_store store in
  check_bool
    (Printf.sprintf "consistent after sync (problems: %s)"
       (String.concat "; " r.Ufs.Fsck.problems))
    true (only_unclean r);
  Alcotest.(check int) "all files present on disk" 20 r.Ufs.Fsck.nfiles

let test_crash_preserves_synced_data () =
  (* data written and fsync'd before the crash must be readable from the
     crashed image on a new machine *)
  let config = Helpers.config () in
  let m = Clusterfs.Machine.create config in
  let store =
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        let ip = Ufs.Fs.creat fs "/precious" in
        Helpers.write_pattern fs ip ~seed:9 ~off:0 ~len:100_000;
        Ufs.Fs.fsync fs ip;
        Ufs.Iops.iput fs ip;
        Ufs.Fs.sync fs;
        (* more, unsynced work that the crash may destroy *)
        let ip2 = Ufs.Fs.creat fs "/ephemeral" in
        Helpers.write_pattern fs ip2 ~seed:10 ~off:0 ~len:100_000;
        Ufs.Iops.iput fs ip2;
        Clusterfs.Machine.crash m)
  in
  (* forcibly clear the dirty flag so the image mounts (a real fsck -y
     would do the repairs; ours only reports, so we accept the image as
     recovered if its only problem was the flag or loose ephemera) *)
  let e = Sim.Engine.create () in
  let dev = Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk) in
  Disk.Store.copy_into store (Disk.Blkdev.store dev);
  let b = Bytes.create Ufs.Layout.bsize in
  Disk.Store.read (Disk.Blkdev.store dev)
    ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
    ~len:Ufs.Layout.bsize b 0;
  let sb = Ufs.Superblock.decode b in
  sb.Ufs.Superblock.clean <- true;
  Disk.Store.write (Disk.Blkdev.store dev)
    ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
    ~len:Ufs.Layout.bsize
    (Ufs.Superblock.encode sb)
    0;
  let m2 = Clusterfs.Machine.create_no_format config (Disk.Blkdev.store dev) in
  Clusterfs.Machine.run m2 (fun m2 ->
      let fs = m2.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.namei fs "/precious" in
      Helpers.check_pattern fs ip ~seed:9 ~off:0 ~len:100_000;
      Ufs.Iops.iput fs ip)

let suites =
  [
    ( "crash",
      [
        Alcotest.test_case "crash detected" `Quick test_crash_detected;
        Alcotest.test_case "crash after sync consistent" `Quick
          test_crash_after_sync_consistent;
        Alcotest.test_case "synced data survives crash" `Quick
          test_crash_preserves_synced_data;
      ] );
  ]
