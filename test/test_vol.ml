(* Volume manager: geometry/capacity rules, data round-trips across
   stripe and member boundaries, mirror redundancy and fault injection,
   and the 1-member pass-through equivalence. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* a second, smaller drive for unequal-member volumes (~9.4 MB) *)
let tiny_geom =
  Disk.Geom.create ~rpm:4316 ~nheads:4
    ~zones:[ { Disk.Geom.cyls = 96; spt = 48 } ]
    ()

let tiny_disk = { Disk.Device.default_config with Disk.Device.geom = tiny_geom }

let small_cap = Disk.Geom.capacity_bytes Helpers.small_geom
let tiny_cap = Disk.Geom.capacity_bytes tiny_geom

let with_vol ?read_policy ?stripe_bytes layout cfgs f =
  let e = Sim.Engine.create () in
  let v = Vol.create ?read_policy ?stripe_bytes e layout cfgs in
  let result = ref None in
  Sim.Engine.spawn e (fun () -> result := Some (f e v));
  Sim.Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "vol test hung"

let vol_write v e ~sector ~count ~buf =
  let r =
    Disk.Request.make ~kind:Disk.Request.Write ~sector ~count ~buf ~buf_off:0 ()
  in
  Vol.submit v r;
  Disk.Request.wait e r

let vol_read v e ~sector ~count ~buf =
  let r =
    Disk.Request.make ~kind:Disk.Request.Read ~sector ~count ~buf ~buf_off:0 ()
  in
  Vol.submit v r;
  Disk.Request.wait e r

(* ---------- capacity / geometry rules ---------- *)

let test_capacities () =
  let two_small = [| Helpers.small_disk; Helpers.small_disk |] in
  let uneven = [| Helpers.small_disk; tiny_disk |] in
  let e = Sim.Engine.create () in
  check_int "concat sums members"
    (small_cap + tiny_cap)
    (Vol.capacity_bytes (Vol.create e Vol.Concat uneven));
  (* stripe: floor each member to whole units, truncate to the smallest *)
  let su = 128 * 1024 in
  let v = Vol.create e Vol.Stripe uneven ~stripe_bytes:su in
  check_int "stripe truncates to smallest member" (2 * (tiny_cap / su) * su)
    (Vol.capacity_bytes v);
  check_int "stripe of equals" (2 * (small_cap / su) * su)
    (Vol.capacity_bytes (Vol.create e Vol.Stripe two_small ~stripe_bytes:su));
  check_int "mirror is the smallest member" tiny_cap
    (Vol.capacity_bytes (Vol.create e Vol.Mirror uneven));
  (* invalid configurations *)
  Alcotest.check_raises "no members"
    (Invalid_argument "Vol.create: no members") (fun () ->
      ignore (Vol.create e Vol.Concat [||]));
  Alcotest.check_raises "stripe unit not a sector multiple"
    (Invalid_argument "Vol.create: stripe unit must be a positive sector multiple")
    (fun () ->
      ignore (Vol.create e Vol.Stripe two_small ~stripe_bytes:1000));
  Alcotest.check_raises "oversized stripe unit"
    (Invalid_argument "Vol.create: stripe unit exceeds smallest member")
    (fun () ->
      ignore
        (Vol.create e Vol.Stripe uneven ~stripe_bytes:(2 * tiny_cap)))

(* [capacity] is the authoritative device size; [geom] is a per-member
   timing hint.  A file system built on a 2-disk concat must span both
   members, not stop at what the (member-0) geometry suggests. *)
let test_blkdev_capacity_authoritative () =
  let two_small = [| Helpers.small_disk; Helpers.small_disk |] in
  with_vol Vol.Concat two_small (fun e v ->
      let bd = Vol.blkdev v in
      check_int "capacity sums the members" (2 * small_cap)
        (Disk.Blkdev.capacity_bytes bd);
      check_int "geom still describes one member" small_cap
        (Disk.Geom.capacity_bytes (Disk.Blkdev.geom bd));
      Ufs.Fs.mkfs bd ~opts:Helpers.small_mkfs ();
      let cpu = Sim.Cpu.create e in
      let pool = Vm.Pool.create e (Vm.Param.default ~memory_mb:4 ()) in
      let fs =
        Ufs.Fs.mount e cpu pool bd ~features:Ufs.Types.features_clustered ()
      in
      let s = Ufs.Fs.statfs fs in
      check_bool "file system spans both spindles" true
        (s.Ufs.Fs.f_frags * Ufs.Layout.fsize > small_cap);
      Ufs.Fs.unmount fs)

(* ---------- data round-trips ---------- *)

let pattern n seed = Bytes.init n (fun i -> Helpers.pattern_byte ~seed i)

(* write a pattern over a sector range, read it back through the volume,
   and check the bytes survived the member remapping *)
let roundtrip ?stripe_bytes layout cfgs ~sector ~count =
  with_vol ?stripe_bytes layout cfgs (fun e v ->
      let w = pattern (count * 512) sector in
      vol_write v e ~sector ~count ~buf:w;
      let r = Bytes.create (count * 512) in
      vol_read v e ~sector ~count ~buf:r;
      Bytes.equal w r)

let test_roundtrips () =
  let uneven = [| Helpers.small_disk; tiny_disk |] in
  let three = [| tiny_disk; tiny_disk; tiny_disk |] in
  (* concat: a run crossing the member-0/member-1 boundary *)
  let m0_sectors = small_cap / 512 in
  check_bool "concat crosses member boundary" true
    (roundtrip Vol.Concat uneven ~sector:(m0_sectors - 7) ~count:16);
  (* stripe: 8KB units, a run spanning >= 3 stripe units and all members *)
  check_bool "stripe spans 3+ units" true
    (roundtrip Vol.Stripe three ~stripe_bytes:8192 ~sector:5 ~count:60);
  check_bool "stripe unaligned single sector" true
    (roundtrip Vol.Stripe three ~stripe_bytes:8192 ~sector:333 ~count:1);
  check_bool "mirror" true
    (roundtrip Vol.Mirror uneven ~sector:1000 ~count:24)

let test_stripe_split_lands_on_all_members () =
  let three = [| tiny_disk; tiny_disk; tiny_disk |] in
  with_vol Vol.Stripe three ~stripe_bytes:8192 (fun e v ->
      (* 48KB from sector 0 = 6 units of 16 sectors: two per member *)
      let count = 96 in
      let buf = pattern (count * 512) 3 in
      vol_write v e ~sector:0 ~count ~buf;
      check_int "one parent split" 1 (Vol.splits v);
      Array.iteri
        (fun i d ->
          check_int
            (Printf.sprintf "member %d write count" i)
            2
            (Disk.Device.stats d).Disk.Device.writes;
          check_int
            (Printf.sprintf "member %d sectors written" i)
            32
            (Disk.Device.stats d).Disk.Device.sectors_written)
        (Vol.devices v);
      (* member stores are views of the logical image: member 1's first
         unit is logical unit 1 (bytes 8192..16384) *)
      let got = Bytes.create 8192 in
      Disk.Store.read
        (Disk.Device.store (Vol.devices v).(1))
        ~off:0 ~len:8192 got 0;
      check_bool "member 1 unit 0 = logical unit 1" true
        (Bytes.equal got (Bytes.sub buf 8192 8192)))

(* ---------- mirror behaviour ---------- *)

let test_mirror_writes_both_then_survives_failure () =
  let two = [| Helpers.small_disk; Helpers.small_disk |] in
  with_vol Vol.Mirror two (fun e v ->
      let buf = pattern (16 * 512) 7 in
      vol_write v e ~sector:40 ~count:16 ~buf;
      Array.iter
        (fun d ->
          check_int "every member saw the write" 16
            (Disk.Device.stats d).Disk.Device.sectors_written)
        (Vol.devices v);
      (* kill member 0; reads must come back intact off member 1 *)
      Vol.fail_member v 0;
      let r = Bytes.create (16 * 512) in
      vol_read v e ~sector:40 ~count:16 ~buf:r;
      vol_read v e ~sector:40 ~count:16 ~buf:r;
      check_bool "read-back after member failure" true (Bytes.equal buf r);
      check_int "dead member served no reads" 0
        (Disk.Device.stats (Vol.devices v).(0)).Disk.Device.reads;
      (* degraded writes are dropped on the dead member and counted *)
      vol_write v e ~sector:80 ~count:8 ~buf:(pattern (8 * 512) 8);
      check_int "dropped write counted" 1 (Vol.dropped_writes v).(0);
      check_int "survivor still written" 24
        (Disk.Device.stats (Vol.devices v).(1)).Disk.Device.sectors_written;
      (* repair: members are views of one logical image, so the repaired
         member is immediately consistent *)
      Vol.repair_member v 0;
      check_bool "repaired" false (Vol.failed v 0))

let test_stripe_failed_member_raises () =
  let two = [| tiny_disk; tiny_disk |] in
  with_vol Vol.Stripe two ~stripe_bytes:8192 (fun e v ->
      Vol.fail_member v 1;
      (* sectors 0..15 live on member 0: still fine *)
      vol_write v e ~sector:0 ~count:8 ~buf:(pattern (8 * 512) 1);
      check_bool "member-0 I/O still works" true true;
      match vol_read v e ~sector:16 ~count:8 ~buf:(Bytes.create (8 * 512)) with
      | () -> Alcotest.fail "read touching failed member should raise"
      | exception Failure _ -> ())

(* ---------- pass-through equivalence ---------- *)

(* A 1-member concat must produce the very same request stream — same
   sectors, same virtual-time completions — as the bare drive. *)
let test_single_member_passthrough () =
  let run_bare () =
    let e = Sim.Engine.create () in
    let d = Disk.Device.create e Helpers.small_disk in
    Sim.Trace.enable (Disk.Device.trace d) true;
    let result = ref [] in
    Sim.Engine.spawn e (fun () ->
        let b = Bytes.create 8192 in
        Disk.Device.write_sync d ~sector:100 ~count:16 ~buf:b ~buf_off:0;
        Disk.Device.read_sync d ~sector:100 ~count:16 ~buf:b ~buf_off:0;
        Disk.Device.read_sync d ~sector:500 ~count:4 ~buf:b ~buf_off:0;
        result := Sim.Trace.to_list (Disk.Device.trace d));
    Sim.Engine.run e;
    !result
  in
  let run_vol () =
    with_vol Vol.Concat [| Helpers.small_disk |] (fun e v ->
        let d = (Vol.devices v).(0) in
        Sim.Trace.enable (Disk.Device.trace d) true;
        let b = Bytes.create 8192 in
        vol_write v e ~sector:100 ~count:16 ~buf:b;
        vol_read v e ~sector:100 ~count:16 ~buf:b;
        vol_read v e ~sector:500 ~count:4 ~buf:b;
        check_int "nothing was split" 0 (Vol.splits v);
        Sim.Trace.to_list (Disk.Device.trace d))
  in
  let bare = run_bare () and vol = run_vol () in
  check_int "same event count" (List.length bare) (List.length vol);
  List.iter2
    (fun (a : Disk.Device.event) (b : Disk.Device.event) ->
      check_int "same virtual time" a.Disk.Device.at b.Disk.Device.at;
      check_int "same sector" a.Disk.Device.sector b.Disk.Device.sector;
      check_int "same count" a.Disk.Device.count b.Disk.Device.count)
    bare vol

(* ---------- qcheck: random round-trips on every layout ---------- *)

let prop_roundtrip layout ?stripe_bytes cfgs =
  QCheck.Test.make ~count:30
    ~name:(Printf.sprintf "%s round-trip" (Vol.layout_to_string layout))
    QCheck.(pair (int_bound 2000) (int_range 1 200))
    (fun (sector, count) ->
      roundtrip ?stripe_bytes layout cfgs ~sector ~count)

let qcheck_tests =
  let uneven = [| tiny_disk; Helpers.small_disk |] in
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip Vol.Concat uneven;
      prop_roundtrip Vol.Stripe ~stripe_bytes:8192 uneven;
      prop_roundtrip Vol.Mirror uneven;
    ]

(* ---------- a whole machine on a striped volume ---------- *)

let test_machine_on_stripe () =
  let vol = { Clusterfs.Config.disks = 4; layout = Vol.Stripe; stripe_kb = 64 } in
  let m = Helpers.machine ~vol () in
  check_int "machine has 4 member drives" 4
    (Array.length m.Clusterfs.Machine.disks);
  check_bool "machine has a volume" true (m.Clusterfs.Machine.vol <> None);
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/striped" in
      Helpers.write_pattern fs ip ~seed:4 ~off:0 ~len:300_000;
      Ufs.Fs.fsync fs ip;
      Helpers.check_pattern fs ip ~seed:4 ~off:0 ~len:300_000;
      Ufs.Iops.iput fs ip);
  (* the work really spread across spindles *)
  let busy =
    Array.fold_left
      (fun n d -> if (Disk.Device.stats d).Disk.Device.writes > 0 then n + 1 else n)
      0 m.Clusterfs.Machine.disks
  in
  check_bool "several members wrote" true (busy >= 2);
  (* fsck sees one consistent logical image through the volume *)
  Helpers.fsck_clean m

let suites =
  [
    ( "vol",
      [
        Alcotest.test_case "capacities and edge cases" `Quick test_capacities;
        Alcotest.test_case "blkdev capacity is authoritative" `Quick
          test_blkdev_capacity_authoritative;
        Alcotest.test_case "round-trips across boundaries" `Quick
          test_roundtrips;
        Alcotest.test_case "stripe split: fan-out and mapping" `Quick
          test_stripe_split_lands_on_all_members;
        Alcotest.test_case "mirror: fan-in, failure, repair" `Quick
          test_mirror_writes_both_then_survives_failure;
        Alcotest.test_case "stripe: failed member raises" `Quick
          test_stripe_failed_member_raises;
        Alcotest.test_case "1-member volume == bare drive" `Quick
          test_single_member_passthrough;
        Alcotest.test_case "machine on a 4-disk stripe" `Quick
          test_machine_on_stripe;
      ]
      @ qcheck_tests );
  ]
