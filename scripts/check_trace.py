#!/usr/bin/env python3
"""Validate the shape of a Chrome trace-event JSON file (Sim.Span.to_chrome).

Checks what Perfetto/chrome://tracing silently tolerate but we must not:
  - the document is {"traceEvents": [...]}
  - every event is ph "X" (complete) or "M" (metadata)
  - every X event has string name, int pid/tid, non-negative ts and dur
  - every (pid) and every (pid, tid) referenced by an X event is named
    by process_name / thread_name metadata
  - within a (pid, tid) track, X events are sorted by ts (deterministic
    export order)

Usage: check_trace.py TRACE.json [TRACE2.json ...]; exits non-zero on the
first malformed file.
"""

import json
import sys


def check(path):
    with open(path) as f:
        doc = json.load(f)
    assert isinstance(doc, dict) and "traceEvents" in doc, "no traceEvents"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events, "empty traceEvents"

    procs, threads, spans = {}, {}, []
    for ev in events:
        ph = ev.get("ph")
        assert ph in ("X", "M"), f"unexpected phase {ph!r}"
        pid, tid = ev.get("pid"), ev.get("tid")
        assert isinstance(pid, int) and isinstance(tid, int), f"bad pid/tid in {ev}"
        if ph == "M":
            name = ev["args"]["name"]
            assert isinstance(name, str) and name, f"unnamed metadata {ev}"
            if ev["name"] == "process_name":
                procs[pid] = name
            elif ev["name"] == "thread_name":
                threads[(pid, tid)] = name
            else:
                raise AssertionError(f"unknown metadata {ev['name']!r}")
        else:
            assert isinstance(ev.get("name"), str) and ev["name"], f"unnamed X {ev}"
            ts, dur = ev.get("ts"), ev.get("dur")
            assert isinstance(ts, (int, float)) and ts >= 0, f"bad ts in {ev}"
            assert isinstance(dur, (int, float)) and dur >= 0, f"bad dur in {ev}"
            spans.append(ev)

    assert spans, "no X events"
    last = {}
    for ev in spans:
        pid, tid = ev["pid"], ev["tid"]
        assert pid in procs, f"pid {pid} never named (event {ev['name']!r})"
        assert (pid, tid) in threads, (
            f"tid {tid} of pid {pid} never named (event {ev['name']!r})"
        )
        key = (pid, tid)
        assert ev["ts"] >= last.get(key, 0), (
            f"track {procs[pid]}/{threads[key]} not sorted at ts={ev['ts']}"
        )
        last[key] = ev["ts"]

    print(
        f"{path}: ok — {len(spans)} spans on {len(threads)} tracks "
        f"in {len(procs)} processes"
    )


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for p in sys.argv[1:]:
        check(p)
