(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (plus the ablations DESIGN.md calls out), printing
   paper-reported values next to simulated ones, then runs Bechamel
   micro-benchmarks over the simulator's hot paths.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --quick      -- smaller files/sweeps
     dune exec bench/main.exe -- fig10 alloc  -- named sections only *)

let quick = ref false
let trace = ref false
let only : string list ref = ref []

let want name = !only = [] || List.mem name !only

(* Every section runs under a fresh metrics registry: each machine (or
   bare EFS stack) the section builds registers its layers into it, and
   the accumulated snapshot is written as BENCH_<section>.json next to
   the run.  That file is the observability artifact — the free-behind
   bug this layer exists to catch is a one-line jq over it.

   With --trace, each section also runs under a span recorder; sections
   whose workloads open root spans (the fio paths) leave a Perfetto-
   loadable TRACE_<section>.json behind.  Tracing never changes the
   simulated numbers, so BENCH_*.json is identical either way. *)
let section name title f =
  if want name then begin
    Printf.printf "\n=== [%s] %s ===\n%!" name title;
    let t0 = Sys.time () in
    let reg = Sim.Metrics.create () in
    let recorder = if !trace then Some (Sim.Span.create_recorder ()) else None in
    let f =
      match recorder with
      | Some r ->
          Sim.Span.register_metrics r reg ~instance:name;
          fun () -> Sim.Span.with_recorder r f
      | None -> f
    in
    Clusterfs.Machine.with_metrics_sink reg f;
    let path = Printf.sprintf "BENCH_%s.json" name in
    let oc = open_out path in
    output_string oc
      (Sim.Metrics.to_json reg ~meta:[ ("section", name); ("title", title) ]);
    output_char oc '\n';
    close_out oc;
    (match recorder with
    | Some r when Sim.Span.export_roots r <> [] ->
        let tpath = Printf.sprintf "TRACE_%s.json" name in
        let oc = open_out tpath in
        output_string oc (Sim.Span.to_chrome r);
        close_out oc;
        Printf.printf "    (span trees -> %s)\n%!" tpath
    | _ -> ());
    Printf.printf "    (section took %.1fs of host CPU; metrics -> %s)\n%!"
      (Sys.time () -. t0) path
  end

(* ---------- figures 9/10/11 ---------- *)

let print_iobench_header () =
  Printf.printf "  %-6s %8s %8s %8s %8s %8s\n" "config" "FSR" "FSU" "FSW" "FRR"
    "FRU"

let print_iobench_row fmt (r : Clusterfs.Experiments.iobench_row) =
  Printf.printf "  %-6s " r.Clusterfs.Experiments.config;
  List.iter
    (fun v -> Printf.printf fmt v)
    [
      r.Clusterfs.Experiments.fsr;
      r.Clusterfs.Experiments.fsu;
      r.Clusterfs.Experiments.fsw;
      r.Clusterfs.Experiments.frr;
      r.Clusterfs.Experiments.fru;
    ];
  print_newline ()

let fig9 () =
  print_endline
    "  (run descriptions; cluster size / rotdelay are mkfs+tunefs state,";
  print_endline "   the rest are kernel feature switches)";
  Printf.printf "  %-4s %-10s %-9s %-12s %-12s %-12s\n" "cfg" "cluster"
    "rotdelay" "clustering" "free-behind" "write-limit";
  List.iter
    (fun (c : Clusterfs.Config.t) ->
      Printf.printf "  %-4s %-10s %-9s %-12b %-12b %-12s\n"
        c.Clusterfs.Config.name
        (Printf.sprintf "%dKB"
           (c.Clusterfs.Config.mkfs.Ufs.Fs.maxcontig * Ufs.Layout.bsize / 1024))
        (Printf.sprintf "%dms" c.Clusterfs.Config.mkfs.Ufs.Fs.rotdelay_ms)
        c.Clusterfs.Config.features.Ufs.Types.clustering
        c.Clusterfs.Config.features.Ufs.Types.free_behind
        (match c.Clusterfs.Config.features.Ufs.Types.write_limit with
        | None -> "none"
        | Some n -> Printf.sprintf "%dKB" (n / 1024)))
    Clusterfs.Config.all_figure9

let fig10_rows : Clusterfs.Experiments.iobench_row list ref = ref []

let fig10 () =
  let file_mb = if !quick then 8 else 16 in
  let rows = Clusterfs.Experiments.figure10 ~file_mb () in
  fig10_rows := rows;
  print_endline "  simulated (KB/s):";
  print_iobench_header ();
  List.iter (print_iobench_row "%8.0f ") rows;
  print_endline "  paper (KB/s):";
  print_iobench_header ();
  List.iter (print_iobench_row "%8.0f ") Clusterfs.Experiments.paper_figure10

let utilization_table () =
  let rows =
    Clusterfs.Experiments.cpu_utilization ~file_mb:(if !quick then 8 else 16) ()
  in
  Printf.printf "  %-8s %12s %12s %14s\n" "config" "FSR KB/s" "CPU busy"
    "CPU s per MB";
  List.iter
    (fun (l, r, u) ->
      Printf.printf "  %-8s %12.0f %11.0f%% %14.2f\n" l r (u *. 100.)
        (u /. (r /. 1024.)))
    rows;
  print_endline
    "  (paper: the old system used about half the CPU to move half the disk";
  print_endline
    "   bandwidth.  Note the near-equal CPU-per-MB: the IObench CPU times";
  print_endline
    "   are dominated by the copy time and hence are approximately the";
  print_endline
    "   same — which is exactly why figure 12 uses the mmap interface)"

let fig11 () =
  let rows =
    if !fig10_rows <> [] then !fig10_rows
    else Clusterfs.Experiments.figure10 ~file_mb:(if !quick then 8 else 16) ()
  in
  let print_ratios what rs =
    Printf.printf "  %s:\n" what;
    print_iobench_header ();
    List.iter
      (fun (_, row) -> print_iobench_row "%8.2f " row)
      (Clusterfs.Experiments.ratios rs ~base:"A" ~others:[ "B"; "C"; "D" ])
  in
  print_ratios "simulated ratios" rows;
  print_ratios "paper ratios" Clusterfs.Experiments.paper_figure10

let fig12 () =
  let rows =
    Clusterfs.Experiments.figure12 ~file_mb:(if !quick then 8 else 16) ()
  in
  Printf.printf "  %-45s %10s %12s\n" "run" "sys CPU s" "I/O KB/s";
  List.iter
    (fun (r : Clusterfs.Experiments.cpu_row) ->
      Printf.printf "  %-45s %10.2f %12.0f\n" r.Clusterfs.Experiments.label
        r.Clusterfs.Experiments.sys_cpu_s r.Clusterfs.Experiments.io_kb_per_sec)
    rows;
  print_endline "  paper:";
  List.iter
    (fun (r : Clusterfs.Experiments.cpu_row) ->
      Printf.printf "  %-45s %10.2f\n" r.Clusterfs.Experiments.label
        r.Clusterfs.Experiments.sys_cpu_s)
    Clusterfs.Experiments.paper_figure12;
  match rows with
  | [ a; d ] ->
      Printf.printf
        "  new/old CPU ratio: %.2f simulated vs %.2f paper (2.6/3.4)\n"
        (a.Clusterfs.Experiments.sys_cpu_s /. d.Clusterfs.Experiments.sys_cpu_s)
        (2.6 /. 3.4)
  | _ -> ()

let alloc_table () =
  let best = Clusterfs.Experiments.allocator_best_case ~mb:13 () in
  Printf.printf
    "  best case  (fresh fs, 13MB file):    %4d extents, avg %7.0f KB  (paper: avg ~1536 KB)\n"
    best.Workload.Extents.extents best.Workload.Extents.avg_extent_kb;
  if not !quick then begin
    let worst = Clusterfs.Experiments.allocator_worst_case () in
    Printf.printf
      "  worst case (aged fs, squeezed file): %4d extents, avg %7.0f KB  (paper: avg ~62 KB in 16MB)\n"
      worst.Workload.Extents.extents worst.Workload.Extents.avg_extent_kb
  end

let readahead_table () =
  let rows =
    Clusterfs.Experiments.io_patterns ~file_mb:(if !quick then 8 else 16) ()
  in
  Printf.printf "  %-6s %12s %12s %14s %14s\n" "config" "disk reads"
    "disk writes" "blocks/read" "blocks/write";
  List.iter
    (fun (r : Clusterfs.Experiments.io_pattern) ->
      Printf.printf "  %-6s %12d %12d %14.1f %14.1f\n"
        r.Clusterfs.Experiments.label r.Clusterfs.Experiments.disk_reads
        r.Clusterfs.Experiments.disk_writes
        r.Clusterfs.Experiments.blocks_per_read
        r.Clusterfs.Experiments.blocks_per_write)
    rows;
  print_endline
    "  (paper figs 3/6/7: old system does ~1 block per I/O; clustered system";
  print_endline
    "   moves maxcontig=15 blocks per I/O — one I/O per cluster boundary)"

let cluster_sweep () =
  let sizes = if !quick then [ 8; 56; 120 ] else [ 8; 16; 32; 56; 120; 240 ] in
  let rows = Clusterfs.Experiments.cluster_size_sweep ~sizes_kb:sizes () in
  Printf.printf "  %-10s %10s %10s\n" "cluster" "FSR KB/s" "FSW KB/s";
  List.iter
    (fun (kb, r, w) -> Printf.printf "  %8dKB %10.0f %10.0f\n" kb r w)
    rows;
  print_endline
    "  (paper: 56KB chosen for 16-bit drivers, 120KB used in config A;";
  print_endline "   returns should flatten once clusters span several tracks)"

let wlimit_sweep () =
  let rows = Clusterfs.Experiments.write_limit_sweep () in
  Printf.printf "  %-12s %10s %10s\n" "limit" "FRU KB/s" "FSW KB/s";
  List.iter
    (fun (l, u, w) -> Printf.printf "  %-12s %10.0f %10.0f\n" l u w)
    rows;
  print_endline
    "  (64MB machine so the limit, not memory, sets the queue depth.";
  print_endline
    "   paper: tiny limits leave pipeline bubbles; unlimited lets disksort";
  print_endline
    "   sort a huge queue — fast, but one process locks down all of memory)"

let freebehind_table () =
  let rows = Clusterfs.Experiments.free_behind_ablation () in
  Printf.printf "  %-18s %10s %14s %12s\n" "config" "FSR KB/s" "daemon scans"
    "daemon frees";
  List.iter
    (fun (l, r, scans, freed) ->
      Printf.printf "  %-18s %10.0f %14d %12d\n" l r scans freed)
    rows;
  print_endline
    "  (free-behind keeps throughput while idling the pageout daemon:";
  print_endline
    "   the process causing the problem is the process finding the solution)"

let rotdelay_table () =
  let rows = Clusterfs.Experiments.rotdelay_tuning () in
  Printf.printf "  %-36s %10s %10s\n" "tuning" "FSR KB/s" "FSW KB/s";
  List.iter
    (fun (l, r, w) -> Printf.printf "  %-36s %10.0f %10.0f\n" l r w)
    rows;
  print_endline
    "  (the rejected quick fix: rotdelay 0 without clustering helps reads on";
  print_endline
    "   a track-buffer drive but writes suffer horribly — each block write";
  print_endline "   waits most of a rotation)"

let driver_table () =
  let rows = Clusterfs.Experiments.driver_clustering_ablation () in
  Printf.printf "  %-46s %9s %9s %10s\n" "scheme" "FSR KB/s" "FSW KB/s"
    "coalesced";
  List.iter
    (fun (l, r, w, c) -> Printf.printf "  %-46s %9.0f %9.0f %10d\n" l r w c)
    rows;
  print_endline
    "  (paper: driver clustering helps only writes — reads are synchronous so";
  print_endline
    "   at most two are ever queued; and the FS code still runs per block)"

let musbus_table () =
  let rows = Clusterfs.Experiments.musbus_comparison () in
  Printf.printf "  %-6s %16s %12s\n" "config" "work-units/s" "sys CPU s";
  List.iter
    (fun (l, ups, cpu) -> Printf.printf "  %-6s %16.2f %12.2f\n" l ups cpu)
    rows;
  print_endline
    "  (paper: time-sharing improved only slightly — MusBus moves no";
  print_endline "   substantial data, so clustering has nothing to bite on)"

let efs_table () =
  let rows =
    Clusterfs.Experiments.extent_fs_comparison
      ~file_mb:(if !quick then 8 else 16)
      ~extent_sizes_kb:(if !quick then [ 8; 120 ] else [ 8; 56; 120; 1024 ])
      ()
  in
  Printf.printf "  %-36s %10s %10s\n" "file system" "FSR KB/s" "FSW KB/s";
  List.iter
    (fun (l, r, w) -> Printf.printf "  %-36s %10.0f %10.0f\n" l r w)
    rows;
  print_endline
    "  (the title claim: clustered UFS matches a well-tuned extent-based";
  print_endline
    "   file system, without exposing the extent-size knob — which, chosen";
  print_endline "   badly (8KB), forfeits the entire benefit)"

let reqsize_table () =
  let rows =
    Clusterfs.Experiments.request_size_sweep
      ~sizes_kb:(if !quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ])
      ()
  in
  Printf.printf "  %-12s %10s %14s\n" "read(2) size" "FSR KB/s" "CPU s per MB";
  List.iter
    (fun (kb, r, c) -> Printf.printf "  %10dKB %10.0f %14.3f\n" kb r c)
    rows;
  print_endline
    "  (per-call overhead amortises with the request size; past the block";
  print_endline
    "   size the clustered read-ahead hides the disk either way)"

let zoned_table () =
  let rows = Clusterfs.Experiments.zoned_disk ~file_mb:(if !quick then 4 else 8) () in
  List.iter (fun (l, v) -> Printf.printf "  %-42s %10.0f KB/s\n" l v) rows;
  print_endline
    "  (the paper's case against user-chosen extents: on a variable-geometry";
  print_endline
    "   drive the optimal extent/cluster size differs by disk location, so";
  print_endline "   no one number is ever right — let the file system adapt)"

let border_table () =
  let rows = Clusterfs.Experiments.border_ablation ~nfiles:(if !quick then 60 else 200) () in
  Printf.printf "  %-38s %20s %20s\n" "metadata scheme" "create ms/op(drain)"
    "rm ms/op(drain)";
  List.iter
    (fun (l, (c, cd), (r, rd)) ->
      Printf.printf "  %-38s %12.2f (%5.1f) %12.2f (%5.1f)\n" l c cd r rd)
    rows;
  print_endline
    "  (paper: with an ordered-write flag, directory updates need not be";
  print_endline
    "   synchronous — \"the performance of commands like rm * would improve";
  print_endline "   substantially\")"

let volstripe_table () =
  let rows =
    Clusterfs.Experiments.vol_stripe_sweep
      ~file_mb:(if !quick then 4 else 8)
      ~stripe_kbs:(if !quick then [ 8; 128 ] else [ 8; 32; 128 ])
      ()
  in
  Printf.printf "  %-6s %6s %10s %10s %10s\n" "config" "disks" "stripe"
    "FSR KB/s" "FSW KB/s";
  List.iter
    (fun (c, disks, kb, r, w) ->
      Printf.printf "  %-6s %6d %8dKB %10.0f %10.0f\n" c disks kb r w)
    rows;
  print_endline
    "  (a stripe unit >= the cluster size keeps each 120KB cluster a single";
  print_endline
    "   member I/O: writes stream at near-aggregate rate, reads overlap the";
  print_endline
    "   members via read-ahead.  An 8KB unit shatters each cluster into 15";
  print_endline
    "   member fragments — parallel enough to help cold reads, but the write";
  print_endline
    "   stream degenerates into small scattered member I/Os and collapses.";
  print_endline
    "   Config D on a 128KB stripe barely moves: without clustering there is";
  print_endline "   no big request for the stripe to split)"

let volmirror_table () =
  let rows =
    Clusterfs.Experiments.vol_mirror
      ~file_mb:(if !quick then 2 else 4)
      ~readers:4 ()
  in
  Printf.printf "  %-20s %16s %10s %10s\n" "volume"
    "4-rdr FSR KB/s" "FSW KB/s" "dropped";
  List.iter
    (fun (l, r, w, d) ->
      Printf.printf "  %-20s %16.0f %10.0f %10d\n" l r w d)
    rows;
  print_endline
    "  (reads scale with mirror width under concurrency; writes pay for the";
  print_endline
    "   slowest copy; a degraded mirror reads like one disk and counts the";
  print_endline "   writes its dead member never saw)"

let future_table () =
  let rows =
    Clusterfs.Experiments.future_work_ablation
      ~file_mb:(if !quick then 8 else 16) ()
  in
  List.iter (fun (l, v) -> Printf.printf "  %-45s %10.2f\n" l v) rows

(* ---------- crash recovery: journal replay vs fsck-style scan ---------- *)

(* The journal's pitch is O(log region) recovery instead of fsck's
   O(disk) walk.  Cut the power halfway through a metadata-heavy stream
   on a journaled machine, then measure both on the same crashed image:
   (a) Recover.run in simulated time — it reads only the reserved log
   region — and (b) the block reads a paper-era fsck would issue
   (superblock, every group header, every inode block; a floor, since
   real fsck also walks directories and indirect blocks).  A second
   pair of runs prices the log itself: total sectors written for the
   same workload with the journal on and off. *)
let recovery_table () =
  let nfiles = if !quick then 12 else 48 in
  let base = Clusterfs.Config.config_a in
  let named cfg name = Clusterfs.Config.with_name cfg name in
  let workload m =
    let fs = m.Clusterfs.Machine.fs in
    let buf = Bytes.make 12_288 'j' in
    Ufs.Fs.mkdir fs "/spool";
    for i = 0 to nfiles - 1 do
      let path = Printf.sprintf "/spool/f%02d" i in
      let ip = Ufs.Fs.creat fs path in
      Ufs.Fs.write fs ip ~off:0 ~buf ~len:(Bytes.length buf);
      Ufs.Iops.iput fs ip
    done;
    Ufs.Fs.sync fs;
    (* churn: unlinks, renames and links so the log holds a little of
       everything when the power goes *)
    for i = 0 to nfiles - 1 do
      let path = Printf.sprintf "/spool/f%02d" i in
      if i mod 4 = 3 then Ufs.Fs.unlink fs path
      else if i mod 3 = 0 then Ufs.Fs.rename fs path (path ^ ".r")
      else if i mod 5 = 1 then Ufs.Fs.link fs path (path ^ ".l")
    done;
    Ufs.Fs.sync fs
  in
  let total_writes cfg =
    let m = Clusterfs.Machine.create cfg in
    Clusterfs.Machine.run m workload;
    (Disk.Blkdev.stats m.Clusterfs.Machine.dev).Disk.Blkdev.sectors_written
  in
  let run_cut ~name cutoff =
    let m =
      Clusterfs.Machine.create (named (Clusterfs.Config.with_journal base) name)
    in
    Clusterfs.Machine.run m (fun m ->
        Disk.Blkdev.set_write_cutoff m.Clusterfs.Machine.dev cutoff;
        workload m);
    m
  in
  let fresh_copy store =
    let e = Sim.Engine.create () in
    let dev = Disk.Blkdev.of_device (Disk.Device.create e base.Clusterfs.Config.disk) in
    Disk.Store.copy_into store (Disk.Blkdev.store dev);
    (e, dev)
  in
  let in_process e f =
    let r = ref None in
    Sim.Engine.spawn e (fun () -> r := Some (f ()));
    Sim.Engine.run e;
    Option.get !r
  in
  let sw_plain = total_writes (named base "rcvr-plain") in
  let sw_j = total_writes (named (Clusterfs.Config.with_journal base) "rcvr-jrnl") in
  let n =
    Disk.Blkdev.completed_writes (run_cut ~name:"rcvr-probe" None).Clusterfs.Machine.dev
  in
  let store = Clusterfs.Machine.crash (run_cut ~name:"rcvr-crash" (Some (n / 2))) in
  (* timed replay on a copy of the crashed image *)
  let e, rdev = fresh_copy store in
  let replay_us, rep =
    in_process e (fun () ->
        let t0 = Sim.Engine.now e in
        let rep = Ufs.Recover.run rdev in
        (Sim.Engine.now e - t0, rep))
  in
  let fsck_report = Ufs.Fsck.check rdev in
  (* timed fsck-style metadata scan of the same crashed image *)
  let e2, sdev = fresh_copy store in
  let fsck_us, fsck_blocks =
    in_process e2 (fun () ->
        let t0 = Sim.Engine.now e2 in
        let nblocks = ref 0 in
        let buf = Bytes.create Ufs.Layout.bsize in
        let read_frag frag =
          Disk.Blkdev.read_sync sdev
            ~sector:(Ufs.Layout.frag_to_sector frag)
            ~count:(Ufs.Layout.bsize / Ufs.Layout.sector_bytes)
            ~buf ~buf_off:0;
          incr nblocks
        in
        read_frag Ufs.Layout.sb_frag;
        let sb = Ufs.Superblock.decode (Bytes.copy buf) in
        for cg = 0 to sb.Ufs.Superblock.ncg - 1 do
          read_frag (Ufs.Cg.header_frag sb cg);
          let i0 = Ufs.Cg.inode_area_frag sb cg in
          let nfr = Ufs.Cg.inode_area_frags sb in
          let f = ref i0 in
          while !f < i0 + nfr do
            read_frag !f;
            f := !f + Ufs.Layout.fpb
          done
        done;
        (Sim.Engine.now e2 - t0, !nblocks))
  in
  Printf.printf "  crashed image: %d of %d write completions reached the disk\n"
    (n / 2) n;
  Printf.printf
    "  journal replay:  %8.2f ms simulated  (%d log blocks read, %d entries, %d records)\n"
    (float_of_int replay_us /. 1000.)
    rep.Ufs.Recover.scan.Jrnl.blocks_read rep.Ufs.Recover.scan.Jrnl.entries
    rep.Ufs.Recover.scan.Jrnl.records;
  Printf.printf
    "  fsck-style scan: %8.2f ms simulated  (%d metadata blocks; floor — dirs/indirects uncounted)\n"
    (float_of_int fsck_us /. 1000.)
    fsck_blocks;
  Printf.printf "  replay advantage: %.1fx\n"
    (float_of_int fsck_us /. Float.max 1. (float_of_int replay_us));
  Printf.printf
    "  write volume, same workload: %d sectors plain, %d journaled (%+.1f%%)\n"
    sw_plain sw_j
    (100. *. float_of_int (sw_j - sw_plain) /. float_of_int sw_plain);
  print_endline
    "  (the log is not pure overhead: plain UFS writes each touched inode,";
  print_endline
    "   directory and group block synchronously per operation, while the";
  print_endline
    "   journaled path appends compact records and writes each dirty";
  print_endline "   metadata block in place once, at the sync)";
  Printf.printf "  post-replay fsck: %s (%d files, %d dirs)\n"
    (if Ufs.Fsck.ok fsck_report then "clean"
     else Printf.sprintf "%d PROBLEMS" (List.length fsck_report.Ufs.Fsck.problems))
    fsck_report.Ufs.Fsck.nfiles fsck_report.Ufs.Fsck.ndirs;
  let oc = open_out "FSCK_recovery.txt" in
  let fmt = Format.formatter_of_out_channel oc in
  Format.fprintf fmt "fsck after journal replay of the crashed image:@.%a@."
    Ufs.Fsck.pp fsck_report;
  close_out oc;
  print_endline "    (fsck report -> FSCK_recovery.txt)";
  match Clusterfs.Machine.current_metrics_sink () with
  | None -> ()
  | Some reg ->
      Sim.Metrics.register reg ~layer:"recovery" ~instance:"crash-midway"
        (fun () ->
          Sim.Metrics.
            [
              ("replay_us", Int replay_us);
              ("fsck_scan_us", Int fsck_us);
              ("fsck_scan_blocks", Int fsck_blocks);
              ("log_blocks_read", Int rep.Ufs.Recover.scan.Jrnl.blocks_read);
              ("log_entries", Int rep.Ufs.Recover.scan.Jrnl.entries);
              ("log_records", Int rep.Ufs.Recover.scan.Jrnl.records);
              ("images", Int rep.Ufs.Recover.images);
              ("frag_runs", Int rep.Ufs.Recover.frag_runs);
              ("dir_patches", Int rep.Ufs.Recover.dir_patches);
              ("orphans", Int rep.Ufs.Recover.orphans);
              ("fsck_problems", Int (List.length fsck_report.Ufs.Fsck.problems));
              ("sectors_written_plain", Int sw_plain);
              ("sectors_written_journaled", Int sw_j);
            ])

(* ---------- NFS over the simulated network ---------- *)

let nfs_table () =
  let rows =
    Clusterfs.Experiments.nfs_local_vs_remote
      ~file_mb:(if !quick then 4 else 8)
      ()
  in
  Printf.printf "  %-6s %10s %10s %7s %10s %10s %7s %9s %6s\n" "config"
    "loc FSR" "rem FSR" "rem%" "loc FSW" "rem FSW" "rem%" "READ RPC" "ra";
  List.iter
    (fun (r : Clusterfs.Experiments.nfs_row) ->
      Printf.printf "  %-6s %10.0f %10.0f %6.0f%% %10.0f %10.0f %6.0f%% %9d %6d\n"
        r.Clusterfs.Experiments.nfs_config r.Clusterfs.Experiments.local_fsr
        r.Clusterfs.Experiments.remote_fsr
        (100. *. r.Clusterfs.Experiments.remote_fsr
        /. r.Clusterfs.Experiments.local_fsr)
        r.Clusterfs.Experiments.local_fsw r.Clusterfs.Experiments.remote_fsw
        (100. *. r.Clusterfs.Experiments.remote_fsw
        /. r.Clusterfs.Experiments.local_fsw)
        r.Clusterfs.Experiments.read_rpcs
        r.Clusterfs.Experiments.remote_ra_issued)
    rows;
  print_endline
    "  (the clustering machinery crosses the wire: the client's biods turn a";
  print_endline
    "   sequential stream into cluster-sized READ/WRITE RPCs with read-ahead";
  print_endline
    "   in flight, so remote streaming holds most of the local rate — the";
  print_endline
    "   READ RPC column counts cluster-sized calls, not 8KB blocks)"

let nfsscale_table () =
  let run ~clients ~nfsd ?net () =
    Clusterfs.Experiments.nfs_scaling
      ~file_mb:(if !quick then 1 else 2)
      ~nfsd ?net ~clients ()
  in
  let print_rows label rows =
    Printf.printf "  %s:\n" label;
    Printf.printf "  %8s %6s %8s %12s %12s %9s %10s\n" "clients" "nfsd"
      "link" "agg KB/s" "KB/s each" "retrans" "queue ms";
    List.iter
      (fun (r : Clusterfs.Experiments.nfs_scale_row) ->
        Printf.printf "  %8d %6d %6.1fMB %12.0f %12.0f %9d %10.2f\n"
          r.Clusterfs.Experiments.sc_clients r.Clusterfs.Experiments.sc_nfsd
          r.Clusterfs.Experiments.sc_bandwidth_mb
          r.Clusterfs.Experiments.aggregate_kb_per_sec
          r.Clusterfs.Experiments.per_client_kb_per_sec
          r.Clusterfs.Experiments.sc_retransmits
          r.Clusterfs.Experiments.server_queue_wait_ms;
        if r.Clusterfs.Experiments.sc_dup_evictions > 0 then
          Printf.printf
            "  WARNING: %d dup-cache evictions at %d clients — a delayed \
             retransmit could re-apply a CREATE/WRITE; raise dup_cache_size\n"
            r.Clusterfs.Experiments.sc_dup_evictions
            r.Clusterfs.Experiments.sc_clients)
      rows
  in
  let counts = if !quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  print_rows "client sweep (4 nfsd, Ethernet-class 0.6MB/s links)"
    (List.map (fun c -> run ~clients:c ~nfsd:4 ()) counts);
  let pool = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  print_rows "nfsd-pool sweep (4 clients)"
    (List.map (fun d -> run ~clients:4 ~nfsd:d ()) pool);
  let bws = if !quick then [ 300; 12_500 ] else [ 300; 600; 1200; 12_500 ] in
  print_rows "link-bandwidth sweep (4 clients, 4 nfsd)"
    (List.map
       (fun kb ->
         run ~clients:4 ~nfsd:4
           ~net:{ Net.default_config with Net.bandwidth = kb * 1000 }
           ())
       bws);
  print_endline
    "  (on links slower than the disk, aggregate grows with the client count";
  print_endline
    "   until the server disk saturates; on fast links one streaming client";
  print_endline
    "   already saturates the disk and more clients only add seek interference)";
  (* fleet ladder: N clients hash-sharded over 4 servers behind the
     switched fabric; each rung names the resource that binds there *)
  let fleet_counts = if !quick then [ 16; 64; 256 ] else [ 64; 256; 512; 1024 ] in
  Printf.printf
    "\n  fleet ladder (switched fabric, 4 servers, adaptive, 1MB/client):\n";
  Printf.printf "  %8s %12s %10s %8s %9s %6s %6s %6s %6s %-24s\n" "clients"
    "agg KB/s" "KB/s each" "retrans" "queue ms" "cpu" "disk" "port" "drops"
    "bottleneck";
  List.iter
    (fun c ->
      let r = Clusterfs.Experiments.nfs_fleet ~servers:4 ~clients:c () in
      Printf.printf
        "  %8d %12.0f %10.1f %8d %9.1f %5.0f%% %5.0f%% %5.0f%% %6d %-24s\n"
        r.Clusterfs.Experiments.fl_clients
        r.Clusterfs.Experiments.fl_aggregate_kb_per_sec
        r.Clusterfs.Experiments.fl_per_client_kb_per_sec
        r.Clusterfs.Experiments.fl_retransmits
        r.Clusterfs.Experiments.fl_server_queue_ms
        (100. *. r.Clusterfs.Experiments.fl_server_cpu_util)
        (100. *. r.Clusterfs.Experiments.fl_disk_util)
        (100. *. r.Clusterfs.Experiments.fl_port_util)
        r.Clusterfs.Experiments.fl_switch_drops
        r.Clusterfs.Experiments.fl_bottleneck)
    fleet_counts;
  print_endline
    "  (aggregate goodput climbs until the worst server's disk pins at ~100%;";
  print_endline
    "   past the knee extra clients only deepen the nfsd queue.  The";
  print_endline
    "   utilization columns are the ladder: whichever resource saturates";
  print_endline "   first at a rung is what to buy next)"

let nfsloss_table () =
  let rows =
    Clusterfs.Experiments.nfs_loss
      ~file_mb:(if !quick then 2 else 8)
      ~losses:[ 0.; 0.001; 0.01; 0.05 ] ()
  in
  Printf.printf "  %8s %14s %9s %7s %9s %14s %14s\n" "loss" "goodput KB/s"
    "retrans" "drops" "dup hits" "CREATE ap/iss" "WRITE ap/iss";
  List.iter
    (fun (r : Clusterfs.Experiments.nfs_loss_row) ->
      Printf.printf "  %7.1f%% %14.0f %9d %7d %9d %7d/%-6d %7d/%-6d\n"
        r.Clusterfs.Experiments.loss_pct
        r.Clusterfs.Experiments.goodput_kb_per_sec
        r.Clusterfs.Experiments.zl_retransmits r.Clusterfs.Experiments.zl_drops
        r.Clusterfs.Experiments.zl_dup_hits
        r.Clusterfs.Experiments.creates_applied
        r.Clusterfs.Experiments.creates_issued
        r.Clusterfs.Experiments.writes_applied
        r.Clusterfs.Experiments.writes_issued)
    rows;
  print_endline
    "  (hard-mount retry keeps goodput nonzero at any loss rate below 1;";
  print_endline
    "   the duplicate-request cache keeps applied = issued for CREATE/WRITE";
  print_endline "   no matter how many copies of each call the server hears)"

let nfscc_table () =
  let counts = if !quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let rows =
    Clusterfs.Experiments.nfs_congestion ~file_mb:1 ~client_counts:counts ()
  in
  Printf.printf
    "  %8s %-9s %-7s %12s %9s %8s %9s %7s %8s %8s %6s %9s %6s\n" "clients"
    "transport" "wire" "agg KB/s" "retrans" "steady" "backoffs" "dup ev"
    "srtt ms" "rto ms" "cwnd" "queue ms" "util";
  List.iter
    (fun (r : Clusterfs.Experiments.nfs_cc_row) ->
      Printf.printf
        "  %8d %-9s %-7s %12.0f %9d %8d %9d %7d %8.1f %8.1f %6.1f %9.1f %5.0f%%\n"
        r.Clusterfs.Experiments.cc_clients r.Clusterfs.Experiments.cc_transport
        r.Clusterfs.Experiments.cc_topology
        r.Clusterfs.Experiments.cc_goodput_kb_per_sec
        r.Clusterfs.Experiments.cc_retransmits
        r.Clusterfs.Experiments.cc_steady_retransmits
        r.Clusterfs.Experiments.cc_backoffs
        r.Clusterfs.Experiments.cc_dup_evictions
        r.Clusterfs.Experiments.cc_srtt_ms r.Clusterfs.Experiments.cc_rto_ms
        r.Clusterfs.Experiments.cc_cwnd
        r.Clusterfs.Experiments.cc_server_queue_ms
        (100. *. r.Clusterfs.Experiments.cc_medium_util))
    rows;
  print_endline
    "  (fixed 1.1 s timers mistake saturation queueing for loss: every client";
  print_endline
    "   re-injects duplicates on the same clock and goodput collapses as";
  print_endline
    "   clients grow.  The adaptive transport learns the delay — srtt/rttvar";
  print_endline
    "   with Karn's rule — and bounds outstanding calls with an AIMD window,";
  print_endline
    "   so steady-state retransmits go to ~0 and goodput holds, on private";
  print_endline "   links and on the shared wire alike)"

(* ---------- fio: declarative workloads, cost attribution ---------- *)

let fio_table () =
  let shrink (s : Fio.Spec.t) =
    (* quick mode: quarter the data each job moves, floor one op; the
       per-job shift shrinks with it so shared regions stay adjacent *)
    if !quick then
      {
        s with
        Fio.Spec.size = max s.Fio.Spec.bs (s.Fio.Spec.size / 4);
        Fio.Spec.offset_increment = s.Fio.Spec.offset_increment / 4;
      }
    else s
  in
  List.iter
    (fun spec ->
      let spec = shrink spec in
      print_string (Fio.Report.to_text (Fio.Scenarios.run_local spec));
      print_string (Fio.Report.to_text (Fio.Scenarios.run_remote spec)))
    Fio.Scenarios.all;
  print_endline
    "  write-gathering ablation (each client streams rw=write bs=8k size=2m):";
  Printf.printf "  %8s %11s %12s %16s %11s %10s\n" "clients" "WRITE RPCs"
    "disk writes" "blks/disk-write" "gather KB" "elapsed s";
  List.iter
    (fun c ->
      let g = Fio.Scenarios.write_gather ~clients:c () in
      Printf.printf "  %8d %11d %12d %16.1f %11.1f %10.2f\n"
        g.Fio.Scenarios.clients g.Fio.Scenarios.write_rpcs
        g.Fio.Scenarios.disk_writes g.Fio.Scenarios.blocks_per_disk_write
        g.Fio.Scenarios.gather_kb_mean
        (Sim.Time.to_sec_float g.Fio.Scenarios.elapsed))
    (if !quick then [ 1; 4 ] else [ 1; 4; 8 ]);
  print_endline
    "  (same spec against the local UFS and through an NFS mount; the cost";
  print_endline
    "   table attributes each op's latency to the layer it blocked in, the";
  print_endline
    "   client.cache row being time spent copying in the page cache.  The";
  print_endline
    "   remote runs read faster than local: the prewritten file is cold on";
  print_endline
    "   the client but still warm in the server's page cache, which is";
  print_endline "   exactly what a second-level cache is for)"

(* ---------- engine self-observability ---------- *)

(* How fast does the event loop itself go?  Synthetic loads exercise the
   three hot paths the engine counters watch: pure dispatch (many
   processes trading sleeps), heap depth (everyone asleep at once), and
   timer churn (schedule_cancellable handles cancelled before firing —
   the RPC retransmission pattern).  Host-time rates are hardware-bound
   and printed for eyeballing only; the counters themselves land in
   BENCH_engine.json and are what benchdiff gates on. *)
let engine_table () =
  let register label engine =
    match Clusterfs.Machine.current_metrics_sink () with
    | Some reg -> Sim.Engine.register_metrics engine reg ~instance:label
    | None -> ()
  in
  let sleeper_load ~procs ~ticks =
    let engine = Sim.Engine.create () in
    let t0 = Sys.time () in
    for p = 0 to procs - 1 do
      Sim.Engine.spawn engine
        ~name:(Printf.sprintf "load.%d" p)
        (fun () ->
          for t = 1 to ticks do
            Sim.Engine.sleep engine (1 + ((p + t) mod 13))
          done)
    done;
    Sim.Engine.run engine;
    (engine, Sys.time () -. t0)
  in
  let cancel_load ~timers =
    let engine = Sim.Engine.create () in
    let t0 = Sys.time () in
    Sim.Engine.spawn engine ~name:"canceller" (fun () ->
        for i = 1 to timers do
          let h =
            Sim.Engine.schedule_cancellable engine ~delay:1000 (fun () -> ())
          in
          if i mod 8 <> 0 then Sim.Engine.cancel h;
          Sim.Engine.sleep engine 1
        done);
    Sim.Engine.run engine;
    (engine, Sys.time () -. t0)
  in
  Printf.printf "  %-24s %10s %10s %10s %9s %14s\n" "load" "events"
    "heap max" "cancels" "host s" "events/sec";
  let row label (engine, host_s) =
    let ev = Sim.Engine.events_dispatched engine in
    Printf.printf "  %-24s %10d %10d %10d %9.3f %14.0f\n" label ev
      (Sim.Engine.heap_max_depth engine)
      (Sim.Engine.cancellations engine)
      host_s
      (float_of_int ev /. Float.max host_s epsilon_float);
    register label engine
  in
  List.iter
    (fun (procs, ticks) ->
      row
        (Printf.sprintf "sleepers p=%d t=%d" procs ticks)
        (sleeper_load ~procs ~ticks))
    (if !quick then [ (100, 50); (1000, 50) ]
     else [ (100, 100); (1000, 100); (10_000, 100) ]);
  let timers = if !quick then 20_000 else 200_000 in
  row (Printf.sprintf "timer churn n=%d" timers) (cancel_load ~timers);
  print_endline
    "  (7 of 8 timers are cancelled before firing, as answered RPCs do;";
  print_endline
    "   cancellation releases the closure immediately, so heap max stays";
  print_endline "   bounded by the in-flight window, not the churn count)"

(* ---------- bechamel micro-benchmarks of simulator hot paths ---------- *)

let microbench () =
  let open Bechamel in
  let heap_test =
    Test.make ~name:"sim.heap push+pop 1k"
      (Staged.stage (fun () ->
           let h = Sim.Heap.create ~cmp:compare in
           for i = 0 to 999 do
             Sim.Heap.push h ((i * 7919) mod 1000, i) ()
           done;
           while not (Sim.Heap.is_empty h) do
             ignore (Sim.Heap.pop h)
           done))
  in
  let rng = Sim.Rng.create ~seed:1 in
  let rng_test =
    Test.make ~name:"sim.rng 1k draws"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Sim.Rng.int rng 4096)
           done))
  in
  let geom = Disk.Geom.sun0400 in
  let chs_test =
    Test.make ~name:"disk.geom to_chs 1k"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Disk.Geom.to_chs geom (i * 797))
           done))
  in
  let store = Disk.Store.create ~size:(64 * 1024 * 1024) in
  let buf = Bytes.create 8192 in
  let store_test =
    Test.make ~name:"disk.store 8KB write+read"
      (Staged.stage (fun () ->
           Disk.Store.write store ~off:123456 ~len:8192 buf 0;
           Disk.Store.read store ~off:123456 ~len:8192 buf 0))
  in
  let tests =
    Test.make_grouped ~name:"simulator"
      [ heap_test; rng_test; chs_test; store_test ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances tests
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock (benchmark ())
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
    results

(* ---------- the section registry ---------- *)

let registry : (string * string * (unit -> unit)) list =
  [
    ("fig9", "Figure 9: IObench run descriptions", fig9);
    ("fig10", "Figure 10: IObench transfer rates (KB/s)", fig10);
    ("fig11", "Figure 11: IObench transfer rate ratios", fig11);
    ("cpu", "CPU utilisation during sequential reads", utilization_table);
    ("fig12", "Figure 12: system CPU, 16MB mmap read", fig12);
    ("alloc", "Allocator extents (paper sec. 'Allocator details')", alloc_table);
    ("readahead", "Figs 3/6/7: I/O request patterns", readahead_table);
    ("clustersize", "Ablation E11: cluster size sweep", cluster_sweep);
    ("wlimit", "Ablation E9: write limit sweep", wlimit_sweep);
    ( "freebehind",
      "Ablation E10: free-behind / page thrashing",
      freebehind_table );
    ( "rotdelay0",
      "Ablation E12: rotdelay tuning without clustering",
      rotdelay_table );
    ("driver", "Ablation E8: driver clustering vs FS clustering", driver_table);
    ("musbus", "E13: MusBus timesharing", musbus_table);
    ("efs", "Title claim: clustered UFS vs an extent-based FS", efs_table);
    ("reqsize", "Ablation: read(2) request size", reqsize_table);
    ("zoned", "Variable geometry: media rate across zones", zoned_table);
    ("border", "Further work: B_ORDER ordered metadata writes", border_table);
    ("volstripe", "Volume manager: striping vs FS clustering", volstripe_table);
    ("volmirror", "Volume manager: mirroring", volmirror_table);
    ( "future",
      "Further-work features (bmap cache, UFS_HOLE, hints)",
      future_table );
    ( "recovery",
      "Crash recovery: journal replay vs fsck-style scan",
      recovery_table );
    ( "nfs",
      "NFS: local vs remote IObench over the simulated network",
      nfs_table );
    ( "nfsscale",
      "NFS: client / nfsd-pool / link-bandwidth scaling",
      nfsscale_table );
    ( "nfsloss",
      "NFS: goodput and duplicate suppression under loss",
      nfsloss_table );
    ("nfscc", "NFS: congestion collapse vs adaptive transport", nfscc_table);
    ("fio", "fio: declarative workloads, per-layer cost attribution", fio_table);
    ("engine", "Engine self-observability: event-loop throughput", engine_table);
    ("micro", "Bechamel micro-benchmarks (simulator hot paths)", microbench);
  ]

let section_names () = List.map (fun (n, _, _) -> n) registry

let split_commas s =
  List.filter (fun x -> x <> "") (String.split_on_char ',' s)

let usage () =
  Printf.eprintf
    "usage: bench/main.exe [--quick] [--trace] [--list] [--sections a,b,...] \
     [SECTION...]\n\
     sections: %s\n"
    (String.concat " " (section_names ()))

let () =
  let argv = Sys.argv in
  let i = ref 1 in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--quick" -> quick := true
    | "--trace" -> trace := true
    | "--list" ->
        List.iter (fun n -> print_endline n) (section_names ());
        exit 0
    | "--sections" when !i + 1 < Array.length argv ->
        incr i;
        only := !only @ split_commas argv.(!i)
    | s when String.length s > 11 && String.sub s 0 11 = "--sections=" ->
        only := !only @ split_commas (String.sub s 11 (String.length s - 11))
    | s when String.length s > 0 && s.[0] <> '-' -> only := !only @ [ s ]
    | s ->
        Printf.eprintf "unknown flag %s\n" s;
        usage ();
        exit 2);
    incr i
  done;
  List.iter
    (fun name ->
      if not (List.mem name (section_names ())) then begin
        Printf.eprintf "unknown section %S\n" name;
        usage ();
        exit 2
      end)
    !only;
  print_endline "UFS clustering reproduction — McVoy & Kleiman, USENIX 1991";
  print_endline "===========================================================";
  List.iter (fun (name, title, f) -> section name title f) registry
